package ip

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// PhantomMode selects which of the paper's four router mechanisms (§4) a
// PhantomDiscipline applies when a packet's stamped rate exceeds u·MACR.
type PhantomMode int

const (
	// SelectiveDiscard drops the packet (Fig. 18 pseudo-code): "the router
	// discards any packet for which the indicated rate (CR) is larger than
	// utilization_factor · MACR".
	SelectiveDiscard PhantomMode = iota
	// SelectiveQuench admits the packet but sends an ICMP Source Quench to
	// its source, which reacts as to a loss.
	SelectiveQuench
	// ECNMark sets the congestion (EFCI) bit on the packet; the receiver
	// echoes it and the source stops increasing / backs off.
	ECNMark
	// SelectiveRED runs RED, but only packets whose rate exceeds u·MACR
	// are eligible for early drop.
	SelectiveRED
)

// String implements fmt.Stringer.
func (m PhantomMode) String() string {
	switch m {
	case SelectiveDiscard:
		return "SelectiveDiscard"
	case SelectiveQuench:
		return "SelectiveQuench"
	case ECNMark:
		return "ECNMark"
	case SelectiveRED:
		return "SelectiveRED"
	default:
		return "?"
	}
}

// PhantomDiscipline is the Phantom port controller applied to an IP router
// output port: the same constant-space core as the ATM switch (meter +
// MACR estimator, units are bits here), with the mode choosing the
// enforcement mechanism.
type PhantomDiscipline struct {
	Mode PhantomMode
	// Config parameterizes the estimator; Capacity is filled from the port.
	Config core.Config
	// RED configures the SelectiveRED lottery (used only in that mode);
	// nil gets defaults with seed 1.
	RED *RED
	// OnTick observes estimator updates for figures.
	OnTick func(now sim.Time, residual, macr float64)

	pc   *core.PortControl
	port *Port
}

// NewPhantomDiscipline builds a discipline with the given mode and
// estimator configuration.
func NewPhantomDiscipline(mode PhantomMode, cfg core.Config) *PhantomDiscipline {
	return &PhantomDiscipline{Mode: mode, Config: cfg}
}

// Name implements Discipline.
func (d *PhantomDiscipline) Name() string { return "Phantom-" + d.Mode.String() }

// Attach implements Discipline.
func (d *PhantomDiscipline) Attach(e *sim.Engine, p *Port) {
	d.port = p
	cfg := d.Config
	cfg.Capacity = p.RateBPS // units: bits/s
	if cfg.Interval == 0 {
		// Packets are ~150× bigger than cells: the ATM default of 1 ms
		// would see only a couple of packet completions per interval and
		// the residual measurement would be dominated by quantization
		// noise. 10 ms keeps tens of packet times per measurement window,
		// the same ratio the cell world enjoys.
		cfg.Interval = 10 * sim.Millisecond
	}
	// Note: the queue-drain charge (core.Config.DrainTime) is left unwired
	// here on purpose. TCP keeps standing queues by design — Reno's
	// sawtooth rides the buffer and Vegas holds its α..β segments there —
	// so charging the backlog against the residual makes the allowed rate
	// collapse whenever the window protocol is merely doing its job, and
	// both flows stall in lockstep. The ATM switch wires it (cell queues
	// are pure transients there).
	d.pc = core.MustPortControl(cfg, e.Now())
	d.pc.OnTick = func(now sim.Time, residual, macr float64) {
		if d.OnTick != nil {
			d.OnTick(now, residual, macr)
		}
	}
	d.pc.Attach(e)
	if d.Mode == SelectiveRED {
		if d.RED == nil {
			d.RED = NewRED(1)
		}
		d.RED.Attach(e, p)
	}
}

// Control exposes the Phantom port controller.
func (d *PhantomDiscipline) Control() *core.PortControl { return d.pc }

// Admit implements Discipline.
func (d *PhantomDiscipline) Admit(now sim.Time, p *Packet) Action {
	if p.Ack {
		return Action{}
	}
	exceeds := d.pc.Exceeds(p.CurrentRate)
	switch d.Mode {
	case SelectiveDiscard:
		if exceeds {
			return Action{Drop: true}
		}
	case SelectiveQuench:
		if exceeds {
			return Action{Quench: true}
		}
	case ECNMark:
		if exceeds {
			p.ECN = true
		}
	case SelectiveRED:
		d.RED.updateAvg(now)
		if exceeds && d.RED.shouldDrop() {
			return Action{Drop: true}
		}
	}
	return Action{}
}

// OnTransmit implements Discipline: meter the port's true utilization in
// bits.
func (d *PhantomDiscipline) OnTransmit(now sim.Time, p *Packet) {
	d.pc.Transmitted(p.SizeBits())
	if d.Mode == SelectiveRED {
		d.RED.OnTransmit(now, p)
	}
}
