package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x.count")
	g := r.Gauge("x.q_peak")
	c.Inc()
	c.Add(10)
	g.Observe(99)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("inert handles must read zero")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
	if r.Len() != 0 {
		t.Fatal("nil registry must report zero length")
	}
	r.Reset() // must not panic
}

func TestNilHandleAllocFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x.count")
	g := r.Gauge("x.q_peak")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Observe(7)
	})
	if allocs != 0 {
		t.Fatalf("inert handle ops allocated %.1f/op, want 0", allocs)
	}
}

func TestLiveHandleAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("x.count")
	g := r.Gauge("x.q_peak")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Observe(7)
	})
	if allocs != 0 {
		t.Fatalf("live handle ops allocated %.1f/op, want 0", allocs)
	}
}

func TestCounterAndGaugeSemantics(t *testing.T) {
	r := New()
	c := r.Counter("link.cells_sent")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	g := r.Gauge("link.queue_cells_peak")
	g.Observe(5)
	g.Observe(3) // below the high-water mark: ignored
	g.Observe(8)
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
}

func TestIdempotentRegistrationSharesAccumulator(t *testing.T) {
	r := New()
	a := r.Counter("link.cells_sent")
	b := r.Counter("link.cells_sent")
	a.Inc()
	b.Add(2)
	if a.Value() != 3 || b.Value() != 3 {
		t.Fatalf("handles read %d/%d, want shared 3", a.Value(), b.Value())
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestSuffixDiscipline(t *testing.T) {
	r := New()
	mustPanic(t, func() { r.Counter("x.bad_peak") })
	mustPanic(t, func() { r.Gauge("x.bad") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestSnapshotIsDetached(t *testing.T) {
	r := New()
	c := r.Counter("x.count")
	c.Add(1)
	snap := r.Snapshot()
	c.Add(100)
	if snap["x.count"] != 1 {
		t.Fatalf("snapshot mutated to %d", snap["x.count"])
	}
	if r.Snapshot()["x.count"] != 101 {
		t.Fatal("live value lost")
	}
}

func TestReset(t *testing.T) {
	r := New()
	c := r.Counter("x.count")
	g := r.Gauge("x.q_peak")
	c.Add(7)
	g.Observe(7)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("Reset must zero values")
	}
	// Handles stay wired to the same entries after Reset.
	c.Inc()
	if r.Snapshot()["x.count"] != 1 {
		t.Fatal("handle detached by Reset")
	}
}

func TestMergeSumAndMax(t *testing.T) {
	dst := map[string]uint64{"a.count": 1, "a.q_peak": 5}
	Merge(dst, map[string]uint64{"a.count": 2, "a.q_peak": 3, "b.count": 4})
	want := map[string]uint64{"a.count": 3, "a.q_peak": 5, "b.count": 4}
	for k, v := range want {
		if dst[k] != v {
			t.Errorf("%s = %d, want %d", k, dst[k], v)
		}
	}
	// Max direction: a larger incoming peak wins.
	Merge(dst, map[string]uint64{"a.q_peak": 9})
	if dst["a.q_peak"] != 9 {
		t.Errorf("a.q_peak = %d, want 9", dst["a.q_peak"])
	}
}

// TestMergeOrderIndependent is the unit-level half of the fleet determinism
// guarantee: folding the same snapshots in any order gives identical totals.
func TestMergeOrderIndependent(t *testing.T) {
	snaps := []map[string]uint64{
		{"c.count": 1, "c.q_peak": 10},
		{"c.count": 2, "c.q_peak": 30},
		{"c.count": 4, "c.q_peak": 20},
	}
	fwd := map[string]uint64{}
	for _, s := range snaps {
		Merge(fwd, s)
	}
	rev := map[string]uint64{}
	for i := len(snaps) - 1; i >= 0; i-- {
		Merge(rev, snaps[i])
	}
	if fwd["c.count"] != rev["c.count"] || fwd["c.q_peak"] != rev["c.q_peak"] {
		t.Fatalf("order-dependent merge: %v vs %v", fwd, rev)
	}
	if fwd["c.count"] != 7 || fwd["c.q_peak"] != 30 {
		t.Fatalf("totals %v, want count=7 peak=30", fwd)
	}
}

func TestWriteTextSorted(t *testing.T) {
	var sb strings.Builder
	_, err := WriteText(&sb, map[string]uint64{"b.count": 2, "a.count": 1}, "  ")
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Fatalf("unsorted output:\n%s", out)
	}
}

func TestWriteProm(t *testing.T) {
	var sb strings.Builder
	_, err := WriteProm(&sb, map[string]uint64{"link.cells_sent": 12}, map[string]string{"experiment": "E01"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE phantom_counter untyped") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `phantom_counter{name="link.cells_sent",experiment="E01"} 12`) {
		t.Fatalf("missing sample line:\n%s", out)
	}
}

// TestWritePromHistogram pins the native histogram exposition: snapshot
// bucket keys re-assemble into cumulative _bucket{le=...} lines with the
// real _sum and _count, and the ".bNN"/".sum" keys themselves never leak
// into the counter family.
func TestWritePromHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("link.queue_depth_cells")
	h.Observe(0) // bucket 0, le="0"
	h.Observe(1) // bucket 1, le="1"
	h.Observe(3) // bucket 2, le="3"
	h.Observe(3)
	h.Observe(1 << 50) // overflow bucket: only visible on the +Inf line
	r.Counter("link.cells_sent").Add(7)

	var sb strings.Builder
	if _, err := WriteProm(&sb, r.Snapshot(), map[string]string{"experiment": "E01"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE phantom_hist histogram",
		`phantom_hist_bucket{name="link.queue_depth_cells",le="0",experiment="E01"} 1`,
		`phantom_hist_bucket{name="link.queue_depth_cells",le="1",experiment="E01"} 2`,
		`phantom_hist_bucket{name="link.queue_depth_cells",le="3",experiment="E01"} 4`,
		`phantom_hist_bucket{name="link.queue_depth_cells",le="+Inf",experiment="E01"} 5`,
		fmt.Sprintf(`phantom_hist_sum{name="link.queue_depth_cells",experiment="E01"} %d`, 7+uint64(1)<<50),
		`phantom_hist_count{name="link.queue_depth_cells",experiment="E01"} 5`,
		`phantom_counter{name="link.cells_sent",experiment="E01"} 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	for _, reject := range []string{".b0", ".sum"} {
		if strings.Contains(out, reject) {
			t.Fatalf("histogram key %q leaked into the counter family:\n%s", reject, out)
		}
	}
}

// TestBucketKey pins the snapshot-key parser against near-miss names.
func TestBucketKey(t *testing.T) {
	if base, b, ok := bucketKey("link.queue_depth_cells.b07"); !ok || base != "link.queue_depth_cells" || b != 7 {
		t.Fatalf("bucketKey = %q,%d,%v", base, b, ok)
	}
	for _, miss := range []string{"x.b7", "x.bXY", "x.sum", "b07", "x.b077", "plain"} {
		if _, _, ok := bucketKey(miss); ok {
			t.Fatalf("bucketKey accepted %q", miss)
		}
	}
}
