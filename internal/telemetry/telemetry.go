// Package telemetry is the counter layer of the observability stack: a
// per-engine registry of named uint64 counters and high-water gauges that
// hot components bump through pre-resolved handles.
//
// The design constraints come from the simulator's performance contract
// (DESIGN.md §9):
//
//   - Free when off. A nil *Registry hands out zero-value handles whose
//     methods are no-ops on a nil entry — the same pattern as the nil
//     *trace.Tracer — so components increment unconditionally and a
//     telemetry-disabled run pays one predictable branch per event.
//   - Near-free when on. Handles are resolved once at build time
//     (Registry.Counter / Registry.Gauge); the hot path is a plain uint64
//     add on a pre-resolved pointer. No map lookups, no atomics, no
//     allocations after setup.
//   - Single-goroutine, like the engine. A Registry belongs to exactly one
//     experiment run, which owns exactly one goroutine at a time (the
//     one-engine-per-goroutine contract). Cross-run aggregation happens on
//     snapshots, never on live registries, so the counters need no locking
//     and the race detector enforces the contract for free.
//   - Deterministic aggregation. Snapshots merge with commutative,
//     associative operations only — sum for counters, max for gauges — so
//     fleet totals are bit-identical no matter the worker count or job
//     completion order (the determinism test in internal/runner checks
//     this).
//
// Naming convention: dotted lowercase paths, component first
// ("link.cells_sent", "tcp.retransmits", "engine.events_fired"). Gauge
// names end in "_peak"; Merge keys its max-vs-sum decision off that suffix
// so snapshots stay plain map[string]uint64 end to end.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// PeakSuffix marks gauge names. Snapshot values whose name carries this
// suffix aggregate by max; everything else aggregates by sum.
const PeakSuffix = "_peak"

// entry is one registered quantity. Counter and Gauge handles point at it;
// the value lives here so that idempotent re-registration (two links both
// asking for "link.cells_sent") shares one accumulator.
type entry struct {
	name string
	v    uint64
}

// Registry holds the counters of one experiment run. The zero value is not
// usable; call New. A nil *Registry is valid and free: it hands out
// zero-value handles and nil snapshots.
type Registry struct {
	byName  map[string]*entry
	entries []*entry // registration-ordered; Snapshot sorts by name
	hists   []*histogram
	histBy  map[string]*histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*entry), histBy: make(map[string]*histogram)}
}

// resolve returns the entry for name, creating it on first use.
func (r *Registry) resolve(name string) *entry {
	if e, ok := r.byName[name]; ok {
		return e
	}
	e := &entry{name: name}
	r.byName[name] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns a pre-resolved handle for a monotonically increasing
// count. Calling it twice with one name returns handles sharing one
// accumulator, so instances of a component class aggregate naturally. On a
// nil registry it returns the inert zero handle.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	if strings.HasSuffix(name, PeakSuffix) {
		panic(fmt.Sprintf("telemetry: counter %q uses the gauge suffix %q", name, PeakSuffix))
	}
	return Counter{e: r.resolve(name)}
}

// Gauge returns a pre-resolved handle for a high-water mark. The name must
// end in PeakSuffix so that Merge aggregates it by max. On a nil registry it
// returns the inert zero handle.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return Gauge{}
	}
	if !strings.HasSuffix(name, PeakSuffix) {
		panic(fmt.Sprintf("telemetry: gauge %q must end in %q", name, PeakSuffix))
	}
	return Gauge{e: r.resolve(name)}
}

// Counter is a handle to a sum-aggregated quantity. The zero value (from a
// nil registry) is inert: Add and Inc are no-ops, Value is zero.
type Counter struct{ e *entry }

// Add bumps the counter by n. A plain add — no atomics — because the
// registry is single-goroutine like the engine it observes.
func (c Counter) Add(n uint64) {
	if c.e != nil {
		c.e.v += n
	}
}

// Inc bumps the counter by one.
func (c Counter) Inc() {
	if c.e != nil {
		c.e.v++
	}
}

// Value reads the current count (zero on an inert handle).
func (c Counter) Value() uint64 {
	if c.e == nil {
		return 0
	}
	return c.e.v
}

// Gauge is a handle to a max-aggregated high-water mark. The zero value is
// inert.
type Gauge struct{ e *entry }

// Observe records v, keeping the maximum seen.
func (g Gauge) Observe(v uint64) {
	if g.e != nil && v > g.e.v {
		g.e.v = v
	}
}

// Value reads the current high-water mark (zero on an inert handle).
func (g Gauge) Value() uint64 {
	if g.e == nil {
		return 0
	}
	return g.e.v
}

// HistBuckets is the fixed number of log2 buckets a Histogram carries.
// Bucket 0 holds exact zeros; bucket i holds values in [2^(i-1), 2^i);
// the last bucket also absorbs everything larger. 40 buckets span a
// queue depth of one cell to a latency of ~9 simulated minutes in
// nanoseconds — everything this simulator measures.
const HistBuckets = 40

// histogram is the shared accumulator behind Histogram handles: a fixed
// bucket array, recorded into with one shift and two adds. sum accumulates
// the raw observed values so the Prometheus rendering can emit a real
// histogram _sum line instead of a lower-bound estimate.
type histogram struct {
	name   string
	sum    uint64
	counts [HistBuckets]uint64
}

// Histogram returns a pre-resolved handle for a log2-bucketed value
// distribution (queue depths, latencies). Like Counter, one name shares
// one accumulator across instances, and a nil registry returns the inert
// zero handle. The distribution surfaces in Snapshot as one plain counter
// per non-empty bucket, named "<name>.bNN" — sum-merged across runs like
// any counter, persisted and rendered with zero new plumbing.
func (r *Registry) Histogram(name string) Histogram {
	if r == nil {
		return Histogram{}
	}
	if strings.HasSuffix(name, PeakSuffix) {
		panic(fmt.Sprintf("telemetry: histogram %q uses the gauge suffix %q", name, PeakSuffix))
	}
	if h, ok := r.histBy[name]; ok {
		return Histogram{h: h}
	}
	h := &histogram{name: name}
	r.histBy[name] = h
	r.hists = append(r.hists, h)
	return Histogram{h: h}
}

// Histogram is a handle to a log2-bucketed distribution. The zero value is
// inert.
type Histogram struct{ h *histogram }

// Observe records v into its log2 bucket: one bits.Len64 and two adds, no
// branches on the bucket boundaries.
func (h Histogram) Observe(v uint64) {
	if h.h != nil {
		h.h.counts[BucketIndex(v)]++
		h.h.sum += v
	}
}

// Active reports whether the handle records anywhere. Emitters that must
// compute the observed value (a latency subtraction, a ring scan) gate on
// this so a telemetry-off run skips the computation, not just the store.
func (h Histogram) Active() bool { return h.h != nil }

// Count returns the histogram's total number of observations.
func (h Histogram) Count() uint64 {
	if h.h == nil {
		return 0
	}
	var n uint64
	for _, c := range h.h.counts {
		n += c
	}
	return n
}

// BucketIndex maps a value to its log2 bucket.
func BucketIndex(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket i (its lower
// bound is the previous bucket's upper bound; bucket 0 is exactly zero).
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return ^uint64(0)
	}
	return 1 << uint(i)
}

// BucketName formats the snapshot key of bucket i of a histogram.
func BucketName(name string, i int) string {
	return fmt.Sprintf("%s.b%02d", name, i)
}

// SumName formats the snapshot key carrying a histogram's summed
// observations. Like the ".bNN" bucket keys it is a plain sum-merged
// counter end to end (snapshot, merge, store); only the Prometheus
// rendering treats it specially. The ".sum" and ".bNN" suffixes are
// reserved for histograms — do not register counters with them.
func SumName(name string) string { return name + ".sum" }

// Snapshot copies the registry into a plain name→value map. A nil registry
// snapshots to nil. The copy is detached: later increments do not show
// through, which is what makes snapshots safe to merge across goroutines.
// Histograms contribute one entry per non-empty bucket; empty buckets are
// omitted (which buckets fill is as deterministic as the counts in them).
func (r *Registry) Snapshot() map[string]uint64 {
	if r == nil || (len(r.entries) == 0 && len(r.hists) == 0) {
		return nil
	}
	out := make(map[string]uint64, len(r.entries))
	for _, e := range r.entries {
		out[e.name] = e.v
	}
	for _, h := range r.hists {
		filled := false
		for i, c := range h.counts {
			if c != 0 {
				out[BucketName(h.name, i)] = c
				filled = true
			}
		}
		if filled {
			// The sum rides along whenever the histogram observed anything,
			// even if every observation was zero — _sum 0 with _count > 0 is
			// a valid histogram; a missing sum would read as no data.
			out[SumName(h.name)] = h.sum
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Reset zeroes every registered value in place, keeping the entries and any
// outstanding handles valid, so one registry can be reused across the sweep
// points of an experiment without re-resolving handles.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, e := range r.entries {
		e.v = 0
	}
	for _, h := range r.hists {
		h.counts = [HistBuckets]uint64{}
		h.sum = 0
	}
}

// Len returns the number of registered names.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}

// Merge folds src into dst: names ending in PeakSuffix aggregate by max,
// all others by sum. Both operations are commutative and associative, so
// merging snapshots in any order — sequential, parallel, sharded — yields
// identical totals. That property is the whole reason the convention is a
// name suffix rather than out-of-band type metadata: a snapshot stays a
// plain map that any consumer can merge correctly.
func Merge(dst, src map[string]uint64) {
	for k, v := range src {
		if strings.HasSuffix(k, PeakSuffix) {
			if v > dst[k] {
				dst[k] = v
			}
		} else {
			dst[k] += v
		}
	}
}

// AbsorbDelta folds a live registry's growth into dst: for every name in
// cur, counters (and histogram buckets, which snapshot as counters) gain
// cur−prev and peak gauges observe cur's value. prev must be the cur of
// the previous absorption (nil the first time). This is how a sharded
// run's coordinator accumulates per-shard registries into the caller's
// registry across repeated Run calls without double-counting: absorbing
// snapshots keeps the live per-shard registries single-goroutine, and the
// sorted iteration keeps dst's registration order deterministic.
func AbsorbDelta(dst *Registry, cur, prev map[string]uint64) {
	if dst == nil || len(cur) == 0 {
		return
	}
	for _, name := range Names(cur) {
		v := cur[name]
		if strings.HasSuffix(name, PeakSuffix) {
			dst.Gauge(name).Observe(v)
		} else if d := v - prev[name]; d > 0 {
			dst.Counter(name).Add(d)
		}
	}
}

// Names returns the snapshot's keys sorted, the iteration order for any
// rendered output (text report, Prometheus exposition, JSON golden).
func Names(snap map[string]uint64) []string {
	if len(snap) == 0 {
		return nil
	}
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WriteText renders the snapshot as aligned "name value" lines in sorted
// order, the terminal form behind phantom-suite -telemetry.
func WriteText(w io.Writer, snap map[string]uint64, indent string) (int64, error) {
	var n int64
	for _, name := range Names(snap) {
		m, err := fmt.Fprintf(w, "%s%-40s %d\n", indent, name, snap[name])
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// bucketKey reports whether a snapshot key is a histogram bucket key
// "base.bNN", returning the base name and bucket index.
func bucketKey(name string) (base string, bucket int, ok bool) {
	if len(name) < 5 || name[len(name)-4] != '.' || name[len(name)-3] != 'b' {
		return "", 0, false
	}
	d1, d2 := name[len(name)-2], name[len(name)-1]
	if d1 < '0' || d1 > '9' || d2 < '0' || d2 > '9' {
		return "", 0, false
	}
	return name[:len(name)-4], int(d1-'0')*10 + int(d2-'0'), true
}

// WriteProm renders the snapshot in Prometheus text exposition format.
// Plain counters and peaks land in a single family with the dotted name as
// a label — sidestepping Prometheus's metric-name charset without a lossy
// sanitization pass, and keeping the family stable as components add
// counters:
//
//	phantom_counter{name="link.cells_sent"} 123456
//
// Histogram snapshot keys ("base.bNN" buckets plus the "base.sum" total —
// see Registry.Histogram) are recognized and re-assembled into a native
// Prometheus histogram, cumulative buckets and all, so queue-depth and
// latency distributions work with histogram_quantile out of the box:
//
//	phantom_hist_bucket{name="link.queue_depth_cells",le="1"} 5
//	phantom_hist_bucket{name="link.queue_depth_cells",le="+Inf"} 9
//	phantom_hist_sum{name="link.queue_depth_cells"} 31
//	phantom_hist_count{name="link.queue_depth_cells"} 9
//
// Observations are integers, so bucket i's inclusive le bound is 2^i−1
// (bucket 0 holds exact zeros: le="0"); the overflow bucket folds into
// le="+Inf". Extra labels (experiment id, run state) are rendered on every
// sample of both families.
func WriteProm(w io.Writer, snap map[string]uint64, labels map[string]string) (int64, error) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&lb, ",%s=%q", k, labels[k])
	}
	extra := lb.String()

	names := Names(snap)
	// Histogram bases, discovered from the bucket keys; a ".sum" key only
	// counts as histogram data when its base has at least one bucket.
	hists := map[string][]int{}
	for _, name := range names {
		if base, b, ok := bucketKey(name); ok {
			hists[base] = append(hists[base], b)
		}
	}

	var n int64
	emit := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := emit("# TYPE phantom_counter untyped\n"); err != nil {
		return n, err
	}
	for _, name := range names {
		if _, _, ok := bucketKey(name); ok {
			continue
		}
		if base, ok := strings.CutSuffix(name, ".sum"); ok && hists[base] != nil {
			continue
		}
		if err := emit("phantom_counter{name=%q%s} %d\n", name, extra, snap[name]); err != nil {
			return n, err
		}
	}
	if len(hists) == 0 {
		return n, nil
	}
	if err := emit("# TYPE phantom_hist histogram\n"); err != nil {
		return n, err
	}
	bases := make([]string, 0, len(hists))
	for base := range hists {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		buckets := hists[base]
		sort.Ints(buckets)
		var cum uint64
		for _, b := range buckets {
			cum += snap[BucketName(base, b)]
			if b >= HistBuckets-1 {
				continue // the overflow bucket is the +Inf line below
			}
			le := "0"
			if b > 0 {
				le = fmt.Sprint(uint64(1)<<uint(b) - 1)
			}
			if err := emit("phantom_hist_bucket{name=%q,le=%q%s} %d\n", base, le, extra, cum); err != nil {
				return n, err
			}
		}
		if err := emit("phantom_hist_bucket{name=%q,le=\"+Inf\"%s} %d\n", base, extra, cum); err != nil {
			return n, err
		}
		if err := emit("phantom_hist_sum{name=%q%s} %d\n", base, extra, snap[SumName(base)]); err != nil {
			return n, err
		}
		if err := emit("phantom_hist_count{name=%q%s} %d\n", base, extra, cum); err != nil {
			return n, err
		}
	}
	return n, nil
}
