// Command phantom-atm runs the ATM/ABR experiments of the Phantom
// reproduction and prints the paper's figures as ASCII charts.
//
// Usage:
//
//	phantom-atm -list
//	phantom-atm -exp E01 [-duration 400ms] [-quiet]
//	phantom-atm -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	id := flag.String("exp", "", "experiment ID to run (e.g. E01, or a paper ref like fig3)")
	all := flag.Bool("all", false, "run every ATM experiment (E01–E08, E14–E17, A01–A03)")
	duration := flag.Duration("duration", 0, "override simulated duration (e.g. 200ms)")
	quiet := flag.Bool("quiet", false, "suppress figures, print summary metrics only")
	asJSON := flag.Bool("json", false, "print each experiment's summary as JSON")
	flag.Parse()
	jsonMode = *asJSON

	atmIDs := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
		"E14", "E15", "E16", "E17", "E18", "E21", "E22", "A01", "A02", "A03", "A04", "A05"}

	switch {
	case *list:
		for _, d := range exp.All() {
			if contains(atmIDs, d.ID) {
				fmt.Printf("%-4s %-18s %s\n", d.ID, d.PaperRef, d.Title)
			}
		}
	case *all:
		for _, eid := range atmIDs {
			if err := runOne(eid, *duration, *quiet); err != nil {
				fatal(err)
			}
		}
	case *id != "":
		if err := runOne(resolve(*id), *duration, *quiet); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// jsonMode switches output to machine-readable JSON.
var jsonMode bool

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// resolve maps informal names (fig3, table1) onto experiment IDs.
func resolve(name string) string {
	aliases := map[string]string{
		"fig3": "E01", "fig4": "E02", "fig5": "E03", "fig6": "E04",
		"fig7": "E05", "fig8": "E05", "fig9": "E06", "fig11": "E07",
		"table1": "E08", "fig19": "E14", "fig20": "E14", "fig21": "E15",
		"fig22": "E16", "table2": "E17", "exact": "E18", "gfc": "E21", "scaling": "E22",
	}
	if id, ok := aliases[strings.ToLower(name)]; ok {
		return id
	}
	return strings.ToUpper(name)
}

func runOne(id string, d time.Duration, quiet bool) error {
	def, ok := exp.Get(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	if !jsonMode {
		fmt.Printf("== %s (%s): %s\n", def.ID, def.PaperRef, def.Title)
	}
	res, err := def.Run(exp.Options{Duration: d, Quiet: quiet || jsonMode})
	if err != nil {
		return err
	}
	if jsonMode {
		if res.Title == "" {
			res.Title = def.Title
		}
		out, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	printResult(res, quiet)
	return nil
}

func printResult(res *exp.Result, quiet bool) {
	for _, f := range res.Figures {
		fmt.Println(f)
	}
	for _, t := range res.Tables {
		fmt.Println(t)
	}
	for _, n := range res.Notes {
		fmt.Printf("  • %s\n", n)
	}
	if quiet {
		for _, k := range sortedKeys(res.Summary) {
			fmt.Printf("  %-32s %v\n", k, res.Summary[k])
		}
	}
	fmt.Println()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phantom-atm:", err)
	os.Exit(1)
}
