// Command phantom-atm runs the ATM/ABR experiments of the Phantom
// reproduction and prints the paper's figures as ASCII charts.
//
// Usage:
//
//	phantom-atm -list
//	phantom-atm -exp E01 [-duration 400ms] [-quiet] [-scheduler wheel]
//	phantom-atm -all
package main

import (
	"flag"

	"repro/internal/cli"
)

var atmIDs = []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
	"E14", "E15", "E16", "E17", "E18", "E21", "E22", "A01", "A02", "A03", "A04", "A05"}

// aliases maps informal names (fig3, table1) onto experiment IDs.
var aliases = map[string]string{
	"fig3": "E01", "fig4": "E02", "fig5": "E03", "fig6": "E04",
	"fig7": "E05", "fig8": "E05", "fig9": "E06", "fig11": "E07",
	"table1": "E08", "fig19": "E14", "fig20": "E14", "fig21": "E15",
	"fig22": "E16", "table2": "E17", "exact": "E18", "gfc": "E21", "scaling": "E22",
}

func main() {
	c := cli.New("phantom-atm",
		cli.FlagDuration|cli.FlagQuiet|cli.FlagJSON|cli.FlagScheduler|cli.FlagProfile|cli.FlagTelemetry|cli.FlagTrace)
	list := flag.Bool("list", false, "list available experiments")
	id := flag.String("exp", "", "experiment ID to run (e.g. E01, or a paper ref like fig3)")
	all := flag.Bool("all", false, "run every ATM experiment (E01–E08, E14–E17, A01–A03)")
	c.Parse()

	switch {
	case *list:
		cli.ListExperiments(atmIDs)
	case *all:
		for _, eid := range atmIDs {
			if err := c.RunExperiment(eid); err != nil {
				c.Fatal(err)
			}
		}
	case *id != "":
		if err := c.RunExperiment(cli.Resolve(aliases, *id)); err != nil {
			c.Fatal(err)
		}
	default:
		c.Usage()
	}
	c.Close()
}
