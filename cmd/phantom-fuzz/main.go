// Command phantom-fuzz runs invariant-checking campaigns over generated
// scenarios: seeded draws from the scengen families (parking-lot chains,
// fat trees, Waxman meshes, flash crowds, web mixes, transient schedules)
// are built, run, and checked against the flow-control invariants (cell
// conservation, queue bounds, max-min envelope, settling, utilization).
//
// Campaigns are deterministic: scenario (family, index) always maps to the
// same seed — the fleet derivation — so output is bit-identical across runs
// and worker counts, and any finding can be replayed alone with -family and
// -seed.
//
//	phantom-fuzz -n 200                  # 200 scenarios per family
//	phantom-fuzz -family waxman -n 1000  # one family, deeper
//	phantom-fuzz -family waxman -seed 7  # replay one scenario, verbosely
//	phantom-fuzz -n 50 -crosscheck       # also diff heap vs wheel runs
//	phantom-fuzz -n 200 -minimize -freeze testdata/fuzz-regressions
//	phantom-fuzz -n 100 -telemetry -store out/fuzzdb  # persist every run
//	phantom-fuzz -n 500 -submit :8080    # run the campaign on a daemon
//
// The campaign is described by the same api.JobSpec the daemon speaks:
// -submit POSTs it to a phantom-serve instance and streams results back
// (violations included); determinism makes the remote findings identical
// to a local run's. -freeze and -minimize reproducer texts stay local-only
// (the wire carries violation strings, not scenario sources).
//
// With -telemetry the fleet's merged counter totals print after the
// campaign summary. With -store every scenario's summary, counter
// snapshot, and retained trace events land in a phantomdb campaign
// directory; -trace-dir additionally exports per-scenario JSONL. -json
// emits the schema-v3 api.Report.
//
// Exit status is 1 when any scenario violated an invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/api"
	"repro/internal/cli"
	"repro/internal/runner"
	"repro/internal/scengen"
	"repro/internal/sim"
	"repro/internal/simconfig"
	"repro/internal/telemetry"
)

func main() {
	c := cli.New("phantom-fuzz",
		cli.FlagWorkers|cli.FlagScheduler|cli.FlagQuiet|cli.FlagJSON|cli.FlagProfile|
			cli.FlagTelemetry|cli.FlagTrace|cli.FlagStore|cli.FlagHTTP|cli.FlagSubmit)
	n := flag.Int("n", 100, "scenarios per family")
	familyName := flag.String("family", "", "restrict to one family (default all): parkinglot, fattree, waxman, flashcrowd, webmix, transient, shardedmesh")
	seedFlag := flag.Uint64("seed", 0, "replay exactly one scenario with this seed (requires -family)")
	minimize := flag.Bool("minimize", false, "shrink each failing scenario to a minimal reproducer")
	freezeDir := flag.String("freeze", "", "write failing scenarios as regression files into this directory")
	crossCheck := flag.Bool("crosscheck", false, "run every scenario on both scheduler backends and compare")
	c.Parse()

	if *seedFlag != 0 {
		if *familyName == "" {
			c.Fatal(fmt.Errorf("-seed needs -family to pick the generator"))
		}
		if c.Submit != "" {
			c.Fatal(fmt.Errorf("-seed replay is local-only (drop -submit)"))
		}
		fam, err := scengen.ParseFamily(*familyName)
		if err != nil {
			c.Fatal(err)
		}
		clean, err := replayOne(c, fam, *seedFlag, *minimize, *freezeDir)
		if err != nil {
			c.Fatal(err)
		}
		c.Close()
		if !clean {
			os.Exit(1)
		}
		return
	}

	spec := api.JobSpec{
		SchemaVersion: api.SchemaVersion,
		Kind:          api.KindFuzz,
		Fuzz:          &api.FuzzSpec{N: *n, CrossCheck: *crossCheck, Minimize: *minimize},
		Workers:       c.Workers,
		Scheduler:     string(c.Scheduler),
		Telemetry:     c.Telemetry,
	}
	if *familyName != "" {
		spec.Fuzz.Families = []string{*familyName}
	}

	var code int
	if c.Submit != "" {
		code = runRemote(c, spec, *freezeDir)
	} else {
		code = runLocal(c, spec, *freezeDir)
	}
	c.Close()
	os.Exit(code)
}

// runLocal expands the campaign onto this process's own fleet: the same
// path the daemon takes, plus the local-only sinks (freeze dir, trace
// export, -store).
func runLocal(c *cli.Common, spec api.JobSpec, freezeDir string) int {
	expn, err := api.Expand(spec, api.Env{
		Scheduler:    c.Scheduler,
		Trace:        c.TraceDir != "" || c.StoreDir != "",
		TraceRingCap: cli.TraceRingCap,
		TraceDir:     c.TraceDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
		return 2
	}
	sw, err := c.OpenStore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
		return 2
	}
	fleet := &runner.Fleet{Workers: c.Workers, Telemetry: c.Telemetry, Store: sw}
	if c.HTTPAddr != "" {
		state := cli.NewLiveState(len(expn.Jobs))
		state.SetPprof(c.Pprof)
		cli.AttachLive(fleet, state)
		stop, err := cli.ServeLive(c.HTTPAddr, state)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-fuzz: -http:", err)
			return 2
		}
		defer stop()
	}
	results, stats := fleet.Run(expn.Jobs)
	if sw != nil {
		if err := sw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
			return 2
		}
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "phantom-fuzz: %s: %v\n", r.Job.Name, r.Err)
			return 2
		}
	}
	rep, err := expn.Finish(results, stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
		return 2
	}
	findings := expn.Findings()

	if c.JSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
			return 2
		}
		fmt.Println(string(b))
	} else {
		crep := scengen.CampaignReport{Scenarios: len(results), Findings: findings, Stats: stats}
		fmt.Print(crep.Summary())
		if !c.Quiet {
			fmt.Printf("wall %v, %.1fx parallel speedup\n",
				stats.Wall.Round(1000000), float64(stats.WorkWall)/float64(stats.Wall))
		}
		if len(stats.Counters) > 0 && !c.Quiet {
			fmt.Println("\nfleet counter totals:")
			telemetry.WriteText(os.Stdout, stats.Counters, "  ")
		}
	}
	if freezeDir != "" {
		for i := range findings {
			path, err := scengen.Freeze(&findings[i], freezeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
				return 2
			}
			if !c.JSON {
				fmt.Printf("froze %s\n", path)
			}
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runRemote submits the campaign to a phantom-serve daemon and streams the
// results back. Findings arrive as violation strings on the run results.
func runRemote(c *cli.Common, spec api.JobSpec, freezeDir string) int {
	if freezeDir != "" || c.StoreDir != "" || c.TraceDir != "" {
		fmt.Fprintln(os.Stderr, "phantom-fuzz: -freeze, -store and -trace-dir are local sinks; drop them with -submit (the daemon persists runs under its own -data root)")
		return 2
	}
	client := api.NewClient(c.Submit)
	st, err := client.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
		return 2
	}
	if !c.JSON {
		fmt.Fprintf(os.Stderr, "submitted %s (%d scenarios) to %s\n", st.ID, st.Total, client.Base)
	}
	var results []api.RunResult
	rep, err := client.Results(st.ID, func(rr api.RunResult) {
		results = append(results, rr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
		return 2
	}
	rep.Results = results

	bad := 0
	for _, rr := range results {
		if len(rr.Violations) > 0 || rr.Error != "" || rr.Canceled {
			bad++
		}
	}
	if c.JSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-fuzz:", err)
			return 2
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("%d scenarios, %d findings\n", len(results), bad)
		for _, rr := range results {
			switch {
			case rr.Error != "":
				fmt.Printf("%s seed=%d: ERROR %s\n", rr.ID, rr.Seed, rr.Error)
			case rr.Canceled:
				fmt.Printf("%s seed=%d: canceled\n", rr.ID, rr.Seed)
			case len(rr.Violations) > 0:
				fmt.Printf("%s seed=%d:\n", rr.ID, rr.Seed)
				for _, v := range rr.Violations {
					fmt.Printf("  %s\n", v)
				}
			}
		}
		if rep.Job != nil && rep.Job.Store != "" && !c.Quiet {
			fmt.Printf("daemon store: %s\n", rep.Job.Store)
		}
	}
	if bad > 0 || (rep.Job != nil && rep.Job.State != api.JobDone) {
		return 1
	}
	return 0
}

// replayOne generates and checks a single (family, seed) scenario,
// printing its text and full outcome — the debugging view for a campaign
// finding.
func replayOne(c *cli.Common, fam scengen.Family, seed uint64, minimize bool, freezeDir string) (clean bool, err error) {
	spec, text, err := scengen.Generate(fam, seed)
	if err != nil {
		return false, err
	}
	fmt.Printf("# %s seed=%d\n%s", fam, seed, text)
	sched := c.Scheduler
	if sched == sim.SchedulerDefault {
		sched = sim.SchedulerHeap
	}
	o, err := scengen.RunSpec(spec, sched)
	if err != nil {
		return false, err
	}
	violations := scengen.Check(o)
	fmt.Printf("\nfingerprint: %s\n", o.Fingerprint)
	if len(violations) == 0 {
		fmt.Println("all invariants hold")
		return true, nil
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION %s\n", v)
	}
	f := &scengen.Finding{Family: fam, Index: -1, Seed: seed, Text: text, Violations: violations}
	if minimize {
		min := scengen.Minimize(spec, violations[0].Name, sched)
		if mt, err := simconfig.Emit(min); err == nil && mt != text {
			f.Minimized = mt
			fmt.Printf("\nminimized reproducer:\n%s", mt)
		}
	}
	if freezeDir != "" {
		path, err := scengen.Freeze(f, freezeDir)
		if err != nil {
			return false, err
		}
		fmt.Printf("froze %s\n", path)
	}
	return false, nil
}
