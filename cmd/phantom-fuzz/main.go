// Command phantom-fuzz runs invariant-checking campaigns over generated
// scenarios: seeded draws from the scengen families (parking-lot chains,
// fat trees, Waxman meshes, flash crowds, web mixes, transient schedules)
// are built, run, and checked against the flow-control invariants (cell
// conservation, queue bounds, max-min envelope, settling, utilization).
//
// Campaigns are deterministic: scenario (family, index) always maps to the
// same seed — the fleet derivation — so output is bit-identical across runs
// and worker counts, and any finding can be replayed alone with -family and
// -seed.
//
//	phantom-fuzz -n 200                  # 200 scenarios per family
//	phantom-fuzz -family waxman -n 1000  # one family, deeper
//	phantom-fuzz -family waxman -seed 7  # replay one scenario, verbosely
//	phantom-fuzz -n 50 -crosscheck       # also diff heap vs wheel runs
//	phantom-fuzz -n 200 -minimize -freeze testdata/fuzz-regressions
//	phantom-fuzz -n 100 -telemetry -store out/fuzzdb  # persist every run
//
// With -telemetry the fleet's merged counter totals print after the
// campaign summary. With -store every scenario's summary, counter
// snapshot, and retained trace events land in a phantomdb campaign
// directory; -trace-dir additionally exports per-scenario JSONL.
//
// Exit status is 1 when any scenario violated an invariant.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/scengen"
	"repro/internal/sim"
	"repro/internal/simconfig"
	"repro/internal/telemetry"
)

func main() {
	c := cli.New("phantom-fuzz",
		cli.FlagWorkers|cli.FlagScheduler|cli.FlagQuiet|cli.FlagProfile|cli.FlagTelemetry|cli.FlagTrace|cli.FlagStore)
	n := flag.Int("n", 100, "scenarios per family")
	familyName := flag.String("family", "", "restrict to one family (default all): parkinglot, fattree, waxman, flashcrowd, webmix, transient")
	seedFlag := flag.Uint64("seed", 0, "replay exactly one scenario with this seed (requires -family)")
	minimize := flag.Bool("minimize", false, "shrink each failing scenario to a minimal reproducer")
	freezeDir := flag.String("freeze", "", "write failing scenarios as regression files into this directory")
	crossCheck := flag.Bool("crosscheck", false, "run every scenario on both scheduler backends and compare")
	c.Parse()

	var families []scengen.Family
	if *familyName != "" {
		f, err := scengen.ParseFamily(*familyName)
		if err != nil {
			c.Fatal(err)
		}
		families = []scengen.Family{f}
	}

	if *seedFlag != 0 {
		if len(families) != 1 {
			c.Fatal(fmt.Errorf("-seed needs -family to pick the generator"))
		}
		clean, err := replayOne(c, families[0], *seedFlag, *minimize, *freezeDir)
		if err != nil {
			c.Fatal(err)
		}
		c.Close()
		if !clean {
			os.Exit(1)
		}
		return
	}

	sw, err := c.OpenStore()
	if err != nil {
		c.Fatal(err)
	}
	rep, err := scengen.RunCampaign(scengen.CampaignConfig{
		Families:   families,
		N:          *n,
		Workers:    c.Workers,
		Scheduler:  c.Scheduler,
		CrossCheck: *crossCheck,
		Minimize:   *minimize,
		Telemetry:  c.Telemetry,
		TraceDir:   c.TraceDir,
		Store:      sw,
	})
	if err != nil {
		if sw != nil {
			sw.Close()
		}
		c.Fatal(err)
	}
	if sw != nil {
		if err := sw.Close(); err != nil {
			c.Fatal(err)
		}
	}
	fmt.Print(rep.Summary())
	if !c.Quiet {
		fmt.Printf("wall %v, %.1fx parallel speedup\n",
			rep.Stats.Wall.Round(1000000), float64(rep.Stats.WorkWall)/float64(rep.Stats.Wall))
	}
	if len(rep.Stats.Counters) > 0 && !c.Quiet {
		fmt.Println("\nfleet counter totals:")
		telemetry.WriteText(os.Stdout, rep.Stats.Counters, "  ")
	}
	if *freezeDir != "" {
		for i := range rep.Findings {
			path, err := scengen.Freeze(&rep.Findings[i], *freezeDir)
			if err != nil {
				c.Fatal(err)
			}
			fmt.Printf("froze %s\n", path)
		}
	}
	c.Close()
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// replayOne generates and checks a single (family, seed) scenario,
// printing its text and full outcome — the debugging view for a campaign
// finding.
func replayOne(c *cli.Common, fam scengen.Family, seed uint64, minimize bool, freezeDir string) (clean bool, err error) {
	spec, text, err := scengen.Generate(fam, seed)
	if err != nil {
		return false, err
	}
	fmt.Printf("# %s seed=%d\n%s", fam, seed, text)
	sched := c.Scheduler
	if sched == sim.SchedulerDefault {
		sched = sim.SchedulerHeap
	}
	o, err := scengen.RunSpec(spec, sched)
	if err != nil {
		return false, err
	}
	violations := scengen.Check(o)
	fmt.Printf("\nfingerprint: %s\n", o.Fingerprint)
	if len(violations) == 0 {
		fmt.Println("all invariants hold")
		return true, nil
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION %s\n", v)
	}
	f := &scengen.Finding{Family: fam, Index: -1, Seed: seed, Text: text, Violations: violations}
	if minimize {
		min := scengen.Minimize(spec, violations[0].Name, sched)
		if mt, err := simconfig.Emit(min); err == nil && mt != text {
			f.Minimized = mt
			fmt.Printf("\nminimized reproducer:\n%s", mt)
		}
	}
	if freezeDir != "" {
		path, err := scengen.Freeze(f, freezeDir)
		if err != nil {
			return false, err
		}
		fmt.Printf("froze %s\n", path)
	}
	return false, nil
}
