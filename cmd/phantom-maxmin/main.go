// Command phantom-maxmin computes the max-min fair allocation for a
// topology described on standard input, and the Phantom operating point it
// predicts for single-link cases. It is the oracle every fairness figure
// is scored against.
//
// Input format (lines; '#' comments allowed):
//
//	link <name> <capacity>
//	session <name> <link> [<link> ...]
//
// Example:
//
//	echo 'link l0 150
//	link l1 150
//	session long l0 l1
//	session short l0' | phantom-maxmin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/metrics"
	"repro/internal/plot"
)

func main() {
	app := cli.New("phantom-maxmin", cli.FlagProfile)
	u := flag.Float64("u", 5, "Phantom utilization factor for the predicted operating point")
	app.Parse()

	links := map[string]int{}
	var caps []float64
	var sessionNames []string
	var sessions [][]int

	sc := bufio.NewScanner(os.Stdin)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "link":
			if len(fields) != 3 {
				app.Fatal(fmt.Errorf("line %d: link <name> <capacity>", lineNo))
			}
			c, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				app.Fatal(fmt.Errorf("line %d: %v", lineNo, err))
			}
			links[fields[1]] = len(caps)
			caps = append(caps, c)
		case "session":
			if len(fields) < 3 {
				app.Fatal(fmt.Errorf("line %d: session <name> <link>...", lineNo))
			}
			var path []int
			for _, l := range fields[2:] {
				idx, ok := links[l]
				if !ok {
					app.Fatal(fmt.Errorf("line %d: unknown link %q", lineNo, l))
				}
				path = append(path, idx)
			}
			sessionNames = append(sessionNames, fields[1])
			sessions = append(sessions, path)
		default:
			app.Fatal(fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		app.Fatal(err)
	}
	if len(sessions) == 0 {
		app.Fatal(fmt.Errorf("no sessions on stdin (see -h for the format)"))
	}

	rates, err := metrics.MaxMinSolve(metrics.MaxMinProblem{Capacity: caps, Sessions: sessions})
	if err != nil {
		app.Fatal(err)
	}
	tb := plot.NewTable("max-min fair allocation", "session", "rate")
	for i, r := range rates {
		tb.AddRow(sessionNames[i], r)
	}
	fmt.Println(tb.Render())

	// For sessions alone on one link, also print the Phantom prediction.
	counts := map[int]int{}
	for _, path := range sessions {
		if len(path) == 1 {
			counts[path[0]]++
		}
	}
	for name, idx := range links {
		k := counts[idx]
		if k == 0 {
			continue
		}
		macr, rate := metrics.PhantomEquilibrium(caps[idx]*0.95, k, *u)
		fmt.Printf("phantom on %s (k=%d single-link sessions, u=%g): MACR=%.3f rate=%.3f util=%.1f%%\n",
			name, k, *u, macr, rate, 100*float64(k)*rate/caps[idx])
	}
	app.Close()
}
