// Command phantom-compare prints the Section 5 head-to-head comparison of
// the four constant-space rate-control algorithms (Phantom, EPRCA, APRC,
// CAPC) and the CAPC-vs-Phantom detail of Fig. 22. Both experiments run
// concurrently on the fleet runner; output order stays fixed because the
// fleet returns results in job order regardless of completion order.
//
// Usage:
//
//	phantom-compare [-duration 600ms] [-j N] [-scheduler wheel]
package main

import (
	"fmt"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/runner"
)

func main() {
	c := cli.New("phantom-compare",
		cli.FlagDuration|cli.FlagWorkers|cli.FlagScheduler|cli.FlagProfile)
	c.Parse()

	jobs := make([]runner.Job, 0, 2)
	for _, id := range []string{"E17", "E16"} {
		def, ok := exp.Get(id)
		if !ok {
			c.Fatal(fmt.Errorf("%s not registered", id))
		}
		opts := c.Options()
		opts.Quiet = false
		jobs = append(jobs, runner.Job{Def: def, Opts: opts})
	}

	fleet := &runner.Fleet{Workers: c.Workers}
	results, _ := fleet.Run(jobs)
	for _, r := range results {
		def := r.Job.Def
		fmt.Printf("== %s (%s): %s\n", def.ID, def.PaperRef, def.Title)
		if r.Err != nil {
			c.Fatal(r.Err)
		}
		for _, t := range r.Res.Tables {
			fmt.Println(t)
		}
		for _, f := range r.Res.Figures {
			fmt.Println(f)
		}
		for _, n := range r.Res.Notes {
			fmt.Printf("  • %s\n", n)
		}
		fmt.Println()
	}
	c.Close()
}
