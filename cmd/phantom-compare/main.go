// Command phantom-compare prints the Section 5 head-to-head comparison of
// the four constant-space rate-control algorithms (Phantom, EPRCA, APRC,
// CAPC) and the CAPC-vs-Phantom detail of Fig. 22.
//
// Usage:
//
//	phantom-compare [-duration 600ms]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	duration := flag.Duration("duration", 0, "override simulated duration")
	flag.Parse()

	for _, id := range []string{"E17", "E16"} {
		def, ok := exp.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "phantom-compare: %s not registered\n", id)
			os.Exit(1)
		}
		fmt.Printf("== %s (%s): %s\n", def.ID, def.PaperRef, def.Title)
		res, err := def.Run(exp.Options{Duration: *duration})
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-compare:", err)
			os.Exit(1)
		}
		for _, t := range res.Tables {
			fmt.Println(t)
		}
		for _, f := range res.Figures {
			fmt.Println(f)
		}
		for _, n := range res.Notes {
			fmt.Printf("  • %s\n", n)
		}
		fmt.Println()
	}
}
