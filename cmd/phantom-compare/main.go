// Command phantom-compare prints the Section 5 head-to-head comparison of
// the four constant-space rate-control algorithms (Phantom, EPRCA, APRC,
// CAPC) and the CAPC-vs-Phantom detail of Fig. 22. Both experiments run
// concurrently on the fleet runner; output order stays fixed because the
// fleet returns results in job order regardless of completion order.
//
// Usage:
//
//	phantom-compare [-duration 600ms] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/runner"
)

func main() {
	duration := flag.Duration("duration", 0, "override simulated duration")
	workers := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	jobs := make([]runner.Job, 0, 2)
	for _, id := range []string{"E17", "E16"} {
		def, ok := exp.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "phantom-compare: %s not registered\n", id)
			os.Exit(1)
		}
		jobs = append(jobs, runner.Job{Def: def, Opts: exp.Options{Duration: *duration}})
	}

	fleet := &runner.Fleet{Workers: *workers}
	results, _ := fleet.Run(jobs)
	for _, r := range results {
		def := r.Job.Def
		fmt.Printf("== %s (%s): %s\n", def.ID, def.PaperRef, def.Title)
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, "phantom-compare:", r.Err)
			os.Exit(1)
		}
		for _, t := range r.Res.Tables {
			fmt.Println(t)
		}
		for _, f := range r.Res.Figures {
			fmt.Println(f)
		}
		for _, n := range r.Res.Notes {
			fmt.Printf("  • %s\n", n)
		}
		fmt.Println()
	}
}
