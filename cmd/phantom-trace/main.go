// Command phantom-trace inspects recorded observability data in any of
// its persisted forms: the JSONL flight-recorder exports written by
// -trace-dir, a phantomdb campaign directory written by -store, or — with
// -remote — a phantom-serve daemon's analytics endpoints over the same
// filters.
//
// JSONL mode loads one or more exports, filters by component, kind, detail
// substring and time window, and either prints the matching events,
// summarizes them per (component, kind), or re-emits them as JSONL.
// Malformed lines are skipped and counted (the count lands on stderr), so
// a truncated export still yields every intact event.
//
// Store mode (-store dir) queries the columnar campaign store without
// loading it: the block index narrows by experiment, sweep, component and
// time window first, and only matching blocks are decompressed.
//
// Remote mode (-remote addr -job id) runs the same query against a
// daemon's job store; the daemon does the pushdown and streams rows back,
// and the output is byte-identical to running -store against the same
// campaign directory. Without -job, -counters and -results fan out over
// every job store on the daemon (cross-job aggregation).
//
// Usage:
//
//	phantom-trace [flags] file.jsonl [file.jsonl ...]
//	phantom-trace -store dir [flags]
//	phantom-trace -remote addr [-job id] [flags]
//
//	-component s   component name (substring in JSONL mode, exact in store mode)
//	-kind s        substring match on the event kind (e.g. 'drop', 'rate')
//	-detail s      substring match on the formatted fields ('vc=3')
//	-from d        window start in simulated time (e.g. 100ms)
//	-to d          window end in simulated time (0 = unbounded)
//	-summary       per-(component, kind) event counts and rates
//	-json          re-emit the selected events as JSONL on stdout
//
//	-store dir     query a phantomdb campaign directory instead of JSONL files
//	-remote addr   query a phantom-serve daemon instead of local files
//	-job id        daemon job whose store to query (remote mode)
//	-experiment s  exact experiment id filter (store mode)
//	-sweep n       sweep index, -1 = all (store mode)
//	-series name   print the named series' points instead of trace events
//	-counters      print the campaign's merged telemetry counters
//	-results       print per-metric aggregates of the run summaries
//	-scan-stats    report blocks scanned vs skipped on stderr after the query
//
// Exit status is 0 even when nothing matches (an empty selection is an
// answer); 1 on unreadable input.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/api"
	"repro/internal/cli"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		component = flag.String("component", "", "component name (substring; exact in store mode)")
		kind      = flag.String("kind", "", "substring match on the event kind")
		detail    = flag.String("detail", "", "substring match on the formatted fields")
		from      = flag.Duration("from", 0, "window start in simulated time (e.g. 100ms)")
		to        = flag.Duration("to", 0, "window end in simulated time (0 = unbounded)")
		summary   = flag.Bool("summary", false, "print per-(component, kind) counts and rates instead of events")
		jsonOut   = flag.Bool("json", false, "re-emit the selected events as JSONL")

		storeDir  = flag.String("store", "", "query a phantomdb campaign directory instead of JSONL files")
		remote    = flag.String("remote", "", "query a phantom-serve daemon at this address instead of local files")
		jobID     = flag.String("job", "", "daemon job whose store to query (remote mode)")
		exp       = flag.String("experiment", "", "exact experiment id filter (store mode)")
		sweep     = flag.Int("sweep", store.AnySweep, "sweep index, -1 = all (store mode)")
		series    = flag.String("series", "", "print the named series' points instead of trace events (store mode)")
		counters  = flag.Bool("counters", false, "print the campaign's merged telemetry counters (store mode)")
		results   = flag.Bool("results", false, "print per-metric aggregates of the run summaries (store mode)")
		scanStats = flag.Bool("scan-stats", false, "report blocks scanned vs skipped on stderr (store mode)")
	)
	flag.Parse()

	if *storeDir != "" && *remote != "" {
		fatal(fmt.Errorf("-store and -remote are mutually exclusive"))
	}

	if *storeDir != "" || *remote != "" {
		q := store.Query{
			Experiment: *exp,
			Name:       *series,
			Sweep:      *sweep,
			From:       sim.Time(*from),
			To:         sim.Time(*to),
		}
		if *series == "" && !*counters && !*results {
			q.Component = *component
		}
		o := cli.TraceQueryOpts{
			Query: q, Counters: *counters, Results: *results,
			Kind: *kind, Detail: *detail, Summary: *summary, JSON: *jsonOut,
		}

		var src api.QuerySource
		switch {
		case *storeDir != "":
			r, err := store.Open(*storeDir)
			if err != nil {
				fatal(err)
			}
			src = api.LocalSource{R: r}
		case *jobID != "":
			src = &api.RemoteSource{C: api.NewClient(*remote), Job: *jobID}
		default:
			// Cross-job mode: aggregate over every job store on the daemon.
			if *series != "" || !(*counters || *results) {
				fatal(fmt.Errorf("-remote without -job supports only -counters and -results (cross-job aggregation); use -job for series and traces"))
			}
			kind := "summary"
			if *counters {
				kind = "counters"
			}
			stats, err := cli.RunCrossQuery(os.Stdout, api.NewClient(*remote), kind, nil, q)
			if err != nil {
				fatal(err)
			}
			if *scanStats {
				cli.PrintScanStats(os.Stderr, "phantom-trace", stats)
			}
			return
		}
		if err := cli.RunTraceQuery(os.Stdout, src, o); err != nil {
			fatal(err)
		}
		if *scanStats {
			cli.PrintScanStats(os.Stderr, "phantom-trace", src.Stats())
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "phantom-trace: no input (expected JSONL exports from -trace-dir, or -store dir, or -remote addr)")
		flag.Usage()
		os.Exit(2)
	}

	var events []trace.Event
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		evs, skipped, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "phantom-trace: %s: skipped %d malformed lines\n", path, skipped)
		}
		events = append(events, evs...)
	}
	// Multiple inputs concatenate; restore the global chronology so windows
	// and summaries read the same as a single merged recording. The sort is
	// stable so events of one file keep their (time-tied) emission order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })

	q := trace.Query{
		Component: *component,
		Kind:      *kind,
		Detail:    *detail,
		From:      sim.Time(*from),
		To:        sim.Time(*to),
	}
	matched := trace.SelectEvents(events, q)

	switch {
	case *jsonOut:
		if err := trace.WriteJSONL(os.Stdout, matched); err != nil {
			fatal(err)
		}
	case *summary:
		cli.PrintTraceSummary(os.Stdout, matched)
	default:
		for _, e := range matched {
			fmt.Println(e.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phantom-trace:", err)
	os.Exit(1)
}
