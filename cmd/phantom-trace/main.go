// Command phantom-trace inspects recorded observability data in either of
// its persisted forms: the JSONL flight-recorder exports written by
// -trace-dir, or a phantomdb campaign directory written by -store.
//
// JSONL mode loads one or more exports, filters by component, kind, detail
// substring and time window, and either prints the matching events,
// summarizes them per (component, kind), or re-emits them as JSONL.
// Malformed lines are skipped and counted (the count lands on stderr), so
// a truncated export still yields every intact event.
//
// Store mode (-store dir) queries the columnar campaign store without
// loading it: the block index narrows by experiment, sweep, component and
// time window first, and only matching blocks are decompressed.
//
// Usage:
//
//	phantom-trace [flags] file.jsonl [file.jsonl ...]
//	phantom-trace -store dir [flags]
//
//	-component s   component name (substring in JSONL mode, exact in store mode)
//	-kind s        substring match on the event kind (e.g. 'drop', 'rate')
//	-detail s      substring match on the formatted fields ('vc=3')
//	-from d        window start in simulated time (e.g. 100ms)
//	-to d          window end in simulated time (0 = unbounded)
//	-summary       per-(component, kind) event counts and rates
//	-json          re-emit the selected events as JSONL on stdout
//
//	-store dir     query a phantomdb campaign directory instead of JSONL files
//	-experiment s  exact experiment id filter (store mode)
//	-sweep n       sweep index, -1 = all (store mode)
//	-series name   print the named series' points instead of trace events
//	-counters      print the campaign's merged telemetry counters
//	-results       print per-metric aggregates of the run summaries
//	-scan-stats    report blocks scanned vs skipped on stderr after the query
//
// Exit status is 0 even when nothing matches (an empty selection is an
// answer); 1 on unreadable input.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		component = flag.String("component", "", "component name (substring; exact in store mode)")
		kind      = flag.String("kind", "", "substring match on the event kind")
		detail    = flag.String("detail", "", "substring match on the formatted fields")
		from      = flag.Duration("from", 0, "window start in simulated time (e.g. 100ms)")
		to        = flag.Duration("to", 0, "window end in simulated time (0 = unbounded)")
		summary   = flag.Bool("summary", false, "print per-(component, kind) counts and rates instead of events")
		jsonOut   = flag.Bool("json", false, "re-emit the selected events as JSONL")

		storeDir  = flag.String("store", "", "query a phantomdb campaign directory instead of JSONL files")
		exp       = flag.String("experiment", "", "exact experiment id filter (store mode)")
		sweep     = flag.Int("sweep", store.AnySweep, "sweep index, -1 = all (store mode)")
		series    = flag.String("series", "", "print the named series' points instead of trace events (store mode)")
		counters  = flag.Bool("counters", false, "print the campaign's merged telemetry counters (store mode)")
		results   = flag.Bool("results", false, "print per-metric aggregates of the run summaries (store mode)")
		scanStats = flag.Bool("scan-stats", false, "report blocks scanned vs skipped on stderr (store mode)")
	)
	flag.Parse()

	if *storeDir != "" {
		runStore(storeOpts{
			dir: *storeDir, experiment: *exp, sweep: *sweep,
			component: *component, kind: *kind, detail: *detail,
			from: sim.Time(*from), to: sim.Time(*to),
			series: *series, counters: *counters, results: *results,
			summary: *summary, jsonOut: *jsonOut, scanStats: *scanStats,
		})
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "phantom-trace: no input (expected JSONL exports from -trace-dir, or -store dir)")
		flag.Usage()
		os.Exit(2)
	}

	var events []trace.Event
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		evs, skipped, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "phantom-trace: %s: skipped %d malformed lines\n", path, skipped)
		}
		events = append(events, evs...)
	}
	// Multiple inputs concatenate; restore the global chronology so windows
	// and summaries read the same as a single merged recording. The sort is
	// stable so events of one file keep their (time-tied) emission order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })

	q := trace.Query{
		Component: *component,
		Kind:      *kind,
		Detail:    *detail,
		From:      sim.Time(*from),
		To:        sim.Time(*to),
	}
	matched := trace.SelectEvents(events, q)

	switch {
	case *jsonOut:
		if err := trace.WriteJSONL(os.Stdout, matched); err != nil {
			fatal(err)
		}
	case *summary:
		printSummary(matched)
	default:
		for _, e := range matched {
			fmt.Println(e.String())
		}
	}
}

type storeOpts struct {
	dir        string
	experiment string
	sweep      int
	component  string
	kind       string
	detail     string
	from, to   sim.Time
	series     string
	counters   bool
	results    bool
	summary    bool
	jsonOut    bool
	scanStats  bool
}

// runStore answers one store-mode query. The Query's index-backed fields
// (experiment, sweep, component, window) are pushed down so non-matching
// blocks are skipped without decompression; kind/detail substrings are
// post-filters on the events that come back.
func runStore(o storeOpts) {
	r, err := store.Open(o.dir)
	if err != nil {
		fatal(err)
	}
	q := store.Query{
		Experiment: o.experiment,
		Sweep:      o.sweep,
		From:       o.from,
		To:         o.to,
	}
	switch {
	case o.series != "":
		q.Name = o.series
		err = printSeries(r, q)
	case o.counters:
		err = printCounters(r, q)
	case o.results:
		err = printResults(r, q)
	default:
		q.Component = o.component
		err = runStoreTrace(r, q, o)
	}
	if err != nil {
		fatal(err)
	}
	if o.scanStats {
		s := r.Stats()
		fmt.Fprintf(os.Stderr, "phantom-trace: %d files, %d blocks: scanned %d, skipped %d, read %d bytes\n",
			s.Files, s.Blocks, s.BlocksScanned, s.BlocksSkipped, s.BytesRead)
	}
}

// printSeries streams series points as "experiment sweep time value" rows.
func printSeries(r *store.Reader, q store.Query) error {
	return r.Series(q, func(c store.SeriesChunk) error {
		for _, p := range c.Points {
			fmt.Printf("%-24s %4d %14s %g\n", c.Experiment, c.Sweep, p.T, p.V)
		}
		return nil
	})
}

// printCounters merges every matching run's telemetry snapshot (sum for
// counters, max for _peak gauges) and renders the totals.
func printCounters(r *store.Reader, q store.Query) error {
	total := map[string]uint64{}
	runs := 0
	err := r.Counters(q, func(rc store.RunCounters) error {
		telemetry.Merge(total, rc.Counters)
		runs++
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d runs\n", runs)
	_, err = telemetry.WriteText(os.Stdout, total, "  ")
	return err
}

// printResults aggregates the scalar summary metrics of every matching
// run: per metric, the run count, mean, min and max.
func printResults(r *store.Reader, q store.Query) error {
	type agg struct {
		n        int
		sum      float64
		min, max float64
	}
	metrics := map[string]*agg{}
	runs := 0
	err := r.Summaries(q, func(rs store.RunSummary) error {
		runs++
		for name, v := range rs.Summary {
			a, ok := metrics[name]
			if !ok {
				a = &agg{min: math.Inf(1), max: math.Inf(-1)}
				metrics[name] = a
			}
			a.n++
			a.sum += v
			a.min = math.Min(a.min, v)
			a.max = math.Max(a.max, v)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d runs\n", runs)
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Printf("  %-32s %6s %14s %14s %14s\n", "metric", "runs", "mean", "min", "max")
	}
	for _, name := range names {
		a := metrics[name]
		fmt.Printf("  %-32s %6d %14.6g %14.6g %14.6g\n", name, a.n, a.sum/float64(a.n), a.min, a.max)
	}
	return nil
}

// runStoreTrace streams trace events through the JSONL-mode output paths.
func runStoreTrace(r *store.Reader, q store.Query, o storeOpts) error {
	post := trace.Query{Kind: o.kind, Detail: o.detail}
	var events []trace.Event
	err := r.Trace(q, func(c store.TraceChunk) error {
		events = append(events, trace.SelectEvents(c.Events, post)...)
		return nil
	})
	if err != nil {
		return err
	}
	switch {
	case o.jsonOut:
		return trace.WriteJSONL(os.Stdout, events)
	case o.summary:
		printSummary(events)
	default:
		for _, e := range events {
			fmt.Println(e.String())
		}
	}
	return nil
}

// printSummary renders per-(component, kind) counts and event rates over
// each group's own first-to-last span, then a total line.
func printSummary(events []trace.Event) {
	if len(events) == 0 {
		fmt.Println("0 events")
		return
	}
	type stats struct {
		count       int
		first, last sim.Time
	}
	groups := map[string]*stats{}
	for i := range events {
		e := &events[i]
		key := e.Component + "\x00" + e.Kind
		g, ok := groups[key]
		if !ok {
			g = &stats{first: e.T, last: e.T}
			groups[key] = g
		}
		g.count++
		if e.T < g.first {
			g.first = e.T
		}
		if e.T > g.last {
			g.last = e.T
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-16s %-12s %10s %12s %12s %12s\n",
		"component", "kind", "count", "first", "last", "rate/s")
	for _, k := range keys {
		g := groups[k]
		sep := strings.IndexByte(k, 0)
		comp, kind := k[:sep], k[sep+1:]
		rate := 0.0
		if span := g.last.Sub(g.first).Seconds(); span > 0 {
			rate = float64(g.count) / span
		}
		fmt.Printf("%-16s %-12s %10d %12s %12s %12.1f\n",
			comp, kind, g.count, g.first, g.last, rate)
	}
	span := events[len(events)-1].T.Sub(events[0].T)
	fmt.Printf("\n%d events over %v of simulated time\n", len(events), time.Duration(span))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phantom-trace:", err)
	os.Exit(1)
}
