// Command phantom-trace inspects flight-recorder exports: the JSONL files
// written by the -trace-dir flag of phantom-suite / phantom-atm /
// phantom-tcp. It loads one or more exports, filters by component, kind,
// detail substring and time window, and either prints the matching events,
// summarizes them per (component, kind), or re-emits them as JSONL for
// further piping.
//
// Usage:
//
//	phantom-trace [flags] file.jsonl [file.jsonl ...]
//
//	-component s   substring match on the component name (e.g. 'F0', 'edge')
//	-kind s        substring match on the event kind (e.g. 'drop', 'rate')
//	-detail s      substring match on the formatted fields ('vc=3')
//	-from d        window start in simulated time (e.g. 100ms)
//	-to d          window end in simulated time (0 = unbounded)
//	-summary       print per-(component, kind) counts and rates, not events
//	-json          re-emit the filtered events as JSONL on stdout
//
// Exit status is 0 even when nothing matches (an empty selection is an
// answer); 1 on unreadable or malformed input.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		component = flag.String("component", "", "substring match on the component name")
		kind      = flag.String("kind", "", "substring match on the event kind")
		detail    = flag.String("detail", "", "substring match on the formatted fields")
		from      = flag.Duration("from", 0, "window start in simulated time (e.g. 100ms)")
		to        = flag.Duration("to", 0, "window end in simulated time (0 = unbounded)")
		summary   = flag.Bool("summary", false, "print per-(component, kind) counts and rates instead of events")
		jsonOut   = flag.Bool("json", false, "re-emit the filtered events as JSONL")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "phantom-trace: no input files (expected JSONL exports from -trace-dir)")
		flag.Usage()
		os.Exit(2)
	}

	var events []trace.Event
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		evs, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		events = append(events, evs...)
	}
	// Multiple inputs concatenate; restore the global chronology so windows
	// and summaries read the same as a single merged recording. The sort is
	// stable so events of one file keep their (time-tied) emission order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })

	q := trace.Query{
		Component: *component,
		Kind:      *kind,
		Detail:    *detail,
		From:      sim.Time(*from),
		To:        sim.Time(*to),
	}
	matched := trace.SelectEvents(events, q)

	switch {
	case *jsonOut:
		if err := trace.WriteJSONL(os.Stdout, matched); err != nil {
			fatal(err)
		}
	case *summary:
		printSummary(matched)
	default:
		for _, e := range matched {
			fmt.Println(e.String())
		}
	}
}

// printSummary renders per-(component, kind) counts and event rates over
// each group's own first-to-last span, then a total line.
func printSummary(events []trace.Event) {
	if len(events) == 0 {
		fmt.Println("0 events")
		return
	}
	type stats struct {
		count       int
		first, last sim.Time
	}
	groups := map[string]*stats{}
	for i := range events {
		e := &events[i]
		key := e.Component + "\x00" + e.Kind
		g, ok := groups[key]
		if !ok {
			g = &stats{first: e.T, last: e.T}
			groups[key] = g
		}
		g.count++
		if e.T < g.first {
			g.first = e.T
		}
		if e.T > g.last {
			g.last = e.T
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-16s %-12s %10s %12s %12s %12s\n",
		"component", "kind", "count", "first", "last", "rate/s")
	for _, k := range keys {
		g := groups[k]
		sep := strings.IndexByte(k, 0)
		comp, kind := k[:sep], k[sep+1:]
		rate := 0.0
		if span := g.last.Sub(g.first).Seconds(); span > 0 {
			rate = float64(g.count) / span
		}
		fmt.Printf("%-16s %-12s %10d %12s %12s %12.1f\n",
			comp, kind, g.count, g.first, g.last, rate)
	}
	span := events[len(events)-1].T.Sub(events[0].T)
	fmt.Printf("\n%d events over %v of simulated time\n", len(events), time.Duration(span))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phantom-trace:", err)
	os.Exit(1)
}
