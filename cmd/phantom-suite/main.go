// Command phantom-suite runs the whole reproduction suite (E01–E22 and the
// A-series ablations) as a parallel fleet — one simulation engine per worker
// goroutine — and checks every experiment's summary metrics against the
// golden baselines in testdata/golden/.
//
// Usage:
//
//	phantom-suite [flags]
//
//	-filter regex   run only experiments whose ID matches (e.g. 'E0[1-5]')
//	-j N            worker count (default GOMAXPROCS)
//	-duration d     override every experiment's simulated duration
//	-quick          use the reduced-duration profile (the golden baseline
//	                profile; also what the benchmarks use)
//	-sweep N        run each matched experiment at N seeded sweep points
//	-scheduler s    engine calendar backend, heap (default) or wheel;
//	                results are bit-identical either way, so golden
//	                comparison still applies
//	-golden dir     golden directory (default testdata/golden)
//	-update-golden  rewrite the golden baselines from this run
//	-telemetry      give every job a counter registry; report per-experiment
//	                counters and fleet totals
//	-trace-dir d    keep a flight recorder per job and export each job's
//	                retained events to d/<id>.jsonl
//	-store d        append every run's results (summary metrics, counters
//	                when -telemetry is on, trace events) to the phantomdb
//	                campaign directory d; query it with phantom-trace -store
//	-http addr      serve live fleet progress while the suite runs:
//	                /status (JSON) and /metrics (Prometheus text)
//	-submit addr    send the suite as a job to a phantom-serve daemon and
//	                stream the results back instead of running locally;
//	                golden comparison still happens here, against the local
//	                golden directory
//	-json           machine-readable output (the schema-v3 api.Report)
//	-list           list matching experiments and exit
//	-v              print each experiment's notes
//
// The same api.JobSpec drives both paths: locally it expands onto this
// process's fleet, remotely it is POSTed to /v1/jobs verbatim. Results are
// bit-identical either way (seeds derive from experiment ID and sweep
// index), which is why remote runs can still be checked against local
// goldens.
//
// The suite exits non-zero when any experiment fails or any metric drifts
// beyond its tolerance from the golden baseline. Baselines are recorded at a
// specific simulated duration; runs at other durations skip the comparison
// rather than reporting false drift. Telemetry and tracing observe runs
// without perturbing them: metric results (and hence golden comparison) are
// bit-identical with the flags on or off.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/api"
	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	c := cli.New("phantom-suite",
		cli.FlagFilter|cli.FlagWorkers|cli.FlagDuration|cli.FlagQuick|cli.FlagJSON|cli.FlagScheduler|
			cli.FlagProfile|cli.FlagTelemetry|cli.FlagTrace|cli.FlagStore|cli.FlagHTTP|cli.FlagSubmit|cli.FlagShards)
	var (
		goldenDir    = flag.String("golden", "testdata/golden", "golden baseline directory")
		updateGolden = flag.Bool("update-golden", false, "rewrite golden baselines from this run")
		sweep        = flag.Int("sweep", 0, "run each matched experiment at this many seeded sweep points")
		list         = flag.Bool("list", false, "list matching experiments and exit")
		verbose      = flag.Bool("v", false, "print experiment notes")
	)
	c.Parse()
	code := run(c, *goldenDir, *updateGolden, *sweep, *list, *verbose)
	c.Close()
	os.Exit(code)
}

func run(c *cli.Common, goldenDir string, updateGolden bool, sweep int, list, verbose bool) int {
	if list {
		re := c.FilterRegexp()
		n := 0
		exp.Walk(func(d exp.Definition) bool {
			if re.MatchString(d.ID) {
				fmt.Printf("%s  %-18s  %s\n", d.ID, d.PaperRef, d.Title)
				n++
			}
			return true
		})
		if n == 0 {
			fmt.Fprintln(os.Stderr, "phantom-suite: no experiments match the filter")
			return 2
		}
		return 0
	}

	// One spec drives both paths: expanded onto the local fleet, or POSTed
	// verbatim to a daemon with -submit.
	spec := api.JobSpec{
		SchemaVersion: api.SchemaVersion,
		Kind:          api.KindSuite,
		Suite: &api.SuiteSpec{
			Filter:     c.Filter,
			Quick:      c.Quick,
			DurationNS: int64(c.Duration),
			Sweep:      sweep,
		},
		Workers:   c.Workers,
		Scheduler: string(c.Scheduler),
		Telemetry: c.Telemetry,
		Shards:    c.Shards,
	}

	var rep *api.Report
	if c.Submit != "" {
		if c.StoreDir != "" || c.TraceDir != "" {
			fmt.Fprintln(os.Stderr, "phantom-suite: -store and -trace-dir are local sinks; with -submit the daemon persists runs under its own -data root")
			return 2
		}
		var err error
		rep, err = submit(c, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite:", err)
			return 2
		}
	} else {
		var code int
		rep, code = runLocal(c, spec, verbose)
		if rep == nil {
			return code
		}
	}

	// Golden comparison is always client-side, against the local golden
	// directory: the daemon doesn't know (or need) the baselines.
	exitCode, err := goldenPass(rep.Results, goldenDir, updateGolden)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-suite:", err)
		return 2
	}
	if rep.Job != nil && rep.Job.State != api.JobDone {
		exitCode = 1
	}

	if c.JSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite:", err)
			return 2
		}
		fmt.Println(string(b))
		return exitCode
	}
	render(rep, verbose)
	return exitCode
}

// runLocal expands the spec onto this process's own fleet.
func runLocal(c *cli.Common, spec api.JobSpec, verbose bool) (*api.Report, int) {
	expn, err := api.Expand(spec, api.Env{
		Scheduler: c.Scheduler,
		// The store persists trace events too, so -store alone keeps a
		// flight recorder per job; JSONL files are only written for
		// -trace-dir. Tracing never alters results either way.
		Trace:        c.TraceDir != "" || c.StoreDir != "",
		TraceRingCap: cli.TraceRingCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-suite:", err)
		return nil, 2
	}
	hook := func(id string, phase exp.Phase, err error) {
		if !c.JSON && phase == exp.PhaseFailed {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", id, err)
		}
	}
	fleet := &runner.Fleet{Workers: c.Workers, Hook: hook, Telemetry: c.Telemetry}
	sw, err := c.OpenStore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-suite: -store:", err)
		return nil, 2
	}
	fleet.Store = sw
	if c.HTTPAddr != "" {
		state := cli.NewLiveState(len(expn.Jobs))
		state.SetPprof(c.Pprof)
		cli.AttachLive(fleet, state)
		stop, err := cli.ServeLive(c.HTTPAddr, state)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite: -http:", err)
			return nil, 2
		}
		defer stop()
	}
	results, stats := fleet.Run(expn.Jobs)
	if fleet.Store != nil {
		if err := fleet.Store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite: -store:", err)
			return nil, 2
		}
	}
	if c.TraceDir != "" {
		for i := range expn.Jobs {
			tr := expn.Jobs[i].Opts.Trace
			if tr == nil {
				continue
			}
			path, err := cli.ExportTrace(c.TraceDir, expn.Jobs[i].Label(), tr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "phantom-suite: trace export:", err)
				return nil, 2
			}
			if verbose && !c.JSON {
				fmt.Fprintf(os.Stderr, "trace %s: %d events retained (%d seen) → %s\n",
					expn.Jobs[i].Label(), len(tr.Events()), tr.Seen(), path)
			}
		}
	}
	if verbose {
		for _, r := range results {
			if r.Panicked {
				fmt.Fprintln(os.Stderr, r.Stack)
			}
		}
	}
	rep, err := expn.Finish(results, stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantom-suite:", err)
		return nil, 2
	}
	return rep, 0
}

// submit POSTs the spec to the phantom-serve daemon and streams the runs
// back into a report shaped exactly like a local run's.
func submit(c *cli.Common, spec api.JobSpec) (*api.Report, error) {
	client := api.NewClient(c.Submit)
	st, err := client.Submit(spec)
	if err != nil {
		return nil, err
	}
	if !c.JSON {
		fmt.Fprintf(os.Stderr, "submitted %s (%d runs) to %s\n", st.ID, st.Total, client.Base)
	}
	var results []api.RunResult
	rep, err := client.Results(st.ID, func(rr api.RunResult) {
		results = append(results, rr)
	})
	if err != nil {
		return nil, err
	}
	rep.Results = results
	return rep, nil
}

// goldenPass compares (or, with update, rewrites) every successful run
// against the golden baselines, filling Golden/Drifts in place. The
// returned code is 1 when any run failed, was canceled, or drifted.
func goldenPass(results []api.RunResult, dir string, update bool) (int, error) {
	tol := runner.DefaultTolerance()
	code := 0
	for i := range results {
		rr := &results[i]
		if rr.Error != "" || rr.Canceled {
			code = 1
			continue
		}
		snap := runner.Snapshot{ID: rr.ID, SimNanos: rr.SimNS, Seed: rr.Seed, Summary: rr.Summary}
		if update {
			if err := snap.WriteFile(dir); err != nil {
				return 2, fmt.Errorf("write golden: %w", err)
			}
			rr.Golden = "updated"
			continue
		}
		want, err := runner.ReadSnapshot(dir, rr.ID)
		switch {
		case errors.Is(err, os.ErrNotExist):
			rr.Golden = "none"
		case err != nil:
			return 2, err
		case want.SimNanos != snap.SimNanos:
			rr.Golden = "skipped" // baseline recorded at a different duration
		default:
			drifts := runner.Compare(snap, want, tol)
			if len(drifts) == 0 {
				rr.Golden = "ok"
			} else {
				rr.Golden = "drift"
				code = 1
				for _, d := range drifts {
					rr.Drifts = append(rr.Drifts, d.String())
				}
			}
		}
	}
	return code, nil
}

// render prints the human-readable report: one line per run in ID order,
// then the fleet totals.
func render(rep *api.Report, verbose bool) {
	rows := append([]api.RunResult(nil), rep.Results...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	for _, rr := range rows {
		status := "ok"
		switch {
		case rr.Canceled:
			status = "CANC"
		case rr.Error != "":
			status = "FAIL"
		}
		golden := rr.Golden
		if golden == "" {
			golden = "n/a"
		}
		fmt.Printf("%-6s %-4s %8.0fms sim=%-8v golden=%s\n",
			rr.ID, status, rr.WallMS, sim.Duration(rr.SimNS), golden)
		for _, d := range rr.Drifts {
			fmt.Printf("       drift: %s\n", d)
		}
		if rr.Error != "" {
			fmt.Printf("       error: %s\n", rr.Error)
		}
		if verbose {
			for _, n := range rr.Notes {
				fmt.Printf("       • %s\n", n)
			}
		}
	}
	st := rep.Stats
	speedup, simPerWall, allocsPerRun := 0.0, 0.0, 0.0
	if st.WallMS > 0 {
		speedup = st.WorkMS / st.WallMS
		simPerWall = st.SimSeconds / (st.WallMS / 1000)
	}
	if st.Runs > 0 {
		allocsPerRun = float64(st.Mallocs) / float64(st.Runs)
	}
	fmt.Printf("\n%d experiments, %d failed · wall %.0fms · work %.0fms · work/wall %.2fx (j=%d) · %.1f sim-s/wall-s · %.0f allocs/run (%.1f MB)\n",
		st.Runs, st.Failed, st.WallMS, st.WorkMS, speedup, st.Workers,
		simPerWall, allocsPerRun, float64(st.AllocBytes)/1e6)
	if rep.Job != nil {
		fmt.Printf("daemon job %s: state=%s", rep.Job.ID, rep.Job.State)
		if rep.Job.Store != "" {
			fmt.Printf(" store=%s", rep.Job.Store)
		}
		if rep.Job.Error != "" {
			fmt.Printf(" error=%s", rep.Job.Error)
		}
		fmt.Println()
	}
	if len(st.Counters) > 0 {
		fmt.Println("\nfleet counter totals:")
		telemetry.WriteText(os.Stdout, st.Counters, "  ")
	}
}
