// Command phantom-suite runs the whole reproduction suite (E01–E22 and the
// A-series ablations) as a parallel fleet — one simulation engine per worker
// goroutine — and checks every experiment's summary metrics against the
// golden baselines in testdata/golden/.
//
// Usage:
//
//	phantom-suite [flags]
//
//	-filter regex   run only experiments whose ID matches (e.g. 'E0[1-5]')
//	-j N            worker count (default GOMAXPROCS)
//	-duration d     override every experiment's simulated duration
//	-quick          use the reduced-duration profile (the golden baseline
//	                profile; also what the benchmarks use)
//	-scheduler s    engine calendar backend, heap (default) or wheel;
//	                results are bit-identical either way, so golden
//	                comparison still applies
//	-golden dir     golden directory (default testdata/golden)
//	-update-golden  rewrite the golden baselines from this run
//	-telemetry      give every job a counter registry; report per-experiment
//	                counters and fleet totals (text and -json schema v2)
//	-trace-dir d    keep a flight recorder per job and export each job's
//	                retained events to d/<id>.jsonl
//	-store d        append every run's results (summary metrics, counters
//	                when -telemetry is on, trace events) to the phantomdb
//	                campaign directory d; query it with phantom-trace -store
//	-http addr      serve live fleet progress while the suite runs:
//	                /status (JSON) and /metrics (Prometheus text)
//	-json           machine-readable output
//	-list           list matching experiments and exit
//	-v              print each experiment's notes
//
// The suite exits non-zero when any experiment fails or any metric drifts
// beyond its tolerance from the golden baseline. Baselines are recorded at a
// specific simulated duration; runs at other durations skip the comparison
// rather than reporting false drift. Telemetry and tracing observe runs
// without perturbing them: metric results (and hence golden comparison) are
// bit-identical with the flags on or off.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

type suiteConfig struct {
	filter       *regexp.Regexp
	workers      int
	duration     sim.Duration
	quick        bool
	scheduler    sim.SchedulerKind
	goldenDir    string
	updateGolden bool
	telemetry    bool
	traceDir     string
	storeDir     string
	httpAddr     string
	jsonOut      bool
	list         bool
	verbose      bool
}

func main() {
	c := cli.New("phantom-suite",
		cli.FlagFilter|cli.FlagWorkers|cli.FlagDuration|cli.FlagQuick|cli.FlagJSON|cli.FlagScheduler|cli.FlagProfile|cli.FlagTelemetry|cli.FlagTrace|cli.FlagStore)
	var (
		goldenDir    = flag.String("golden", "testdata/golden", "golden baseline directory")
		updateGolden = flag.Bool("update-golden", false, "rewrite golden baselines from this run")
		httpAddr     = flag.String("http", "", "serve live fleet progress and counters on this address (e.g. :8080)")
		list         = flag.Bool("list", false, "list matching experiments and exit")
		verbose      = flag.Bool("v", false, "print experiment notes")
	)
	c.Parse()

	cfg := suiteConfig{
		filter: c.FilterRegexp(), workers: c.Workers,
		duration: sim.Duration(c.Duration), quick: c.Quick, scheduler: c.Scheduler,
		goldenDir: *goldenDir, updateGolden: *updateGolden,
		telemetry: c.Telemetry, traceDir: c.TraceDir, storeDir: c.StoreDir, httpAddr: *httpAddr,
		jsonOut: c.JSON, list: *list, verbose: *verbose,
	}
	code := run(cfg)
	c.Close()
	os.Exit(code)
}

// liveState is the mutable fleet view behind -http. The hook and OnResult
// callbacks run on worker goroutines, so every access locks; handlers read
// a consistent snapshot under the same lock.
type liveState struct {
	mu       sync.Mutex
	start    time.Time
	total    int
	running  map[string]bool
	done     int
	failed   int
	counters map[string]uint64
}

func newLiveState(total int) *liveState {
	return &liveState{
		start:    time.Now(),
		total:    total,
		running:  make(map[string]bool),
		counters: make(map[string]uint64),
	}
}

func (s *liveState) hook(id string, phase exp.Phase, _ error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch phase {
	case exp.PhaseStart:
		s.running[id] = true
	case exp.PhaseDone, exp.PhaseFailed:
		delete(s.running, id)
	}
}

func (s *liveState) onResult(r runner.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	if r.Err != nil {
		s.failed++
	}
	if r.Res != nil {
		telemetry.Merge(s.counters, r.Res.Counters)
	}
}

// snapshot returns a detached copy for a handler to render lock-free.
func (s *liveState) snapshot() (running []string, done, failed, total int, counters map[string]uint64, elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.running {
		running = append(running, id)
	}
	sort.Strings(running)
	counters = make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	return running, s.done, s.failed, s.total, counters, time.Since(s.start)
}

// serveLive starts the -http listener and returns a closer. Handlers:
// /status (JSON progress + merged counters) and /metrics (Prometheus text).
func serveLive(addr string, state *liveState) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		running, done, failed, total, counters, elapsed := state.snapshot()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			SchemaVersion int               `json:"schema_version"`
			Total         int               `json:"total"`
			Done          int               `json:"done"`
			Failed        int               `json:"failed"`
			Running       []string          `json:"running"`
			ElapsedMS     float64           `json:"elapsed_ms"`
			Counters      map[string]uint64 `json:"counters,omitempty"`
		}{exp.SchemaVersion, total, done, failed, running,
			float64(elapsed) / float64(time.Millisecond), counters})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		running, done, failed, total, counters, _ := state.snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# TYPE phantom_suite_jobs untyped\n")
		fmt.Fprintf(w, "phantom_suite_jobs{state=\"total\"} %d\n", total)
		fmt.Fprintf(w, "phantom_suite_jobs{state=\"done\"} %d\n", done)
		fmt.Fprintf(w, "phantom_suite_jobs{state=\"failed\"} %d\n", failed)
		fmt.Fprintf(w, "phantom_suite_jobs{state=\"running\"} %d\n", len(running))
		telemetry.WriteProm(w, counters, nil)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return func() { srv.Close() }, nil
}

func run(cfg suiteConfig) int {
	var defs []exp.Definition
	exp.Walk(func(d exp.Definition) bool {
		if cfg.filter.MatchString(d.ID) {
			defs = append(defs, d)
		}
		return true
	})
	if len(defs) == 0 {
		fmt.Fprintln(os.Stderr, "phantom-suite: no experiments match the filter")
		return 2
	}
	if cfg.list {
		for _, d := range defs {
			fmt.Printf("%s  %-18s  %s\n", d.ID, d.PaperRef, d.Title)
		}
		return 0
	}

	jobs := make([]runner.Job, len(defs))
	var tracers []*trace.Tracer
	if cfg.traceDir != "" || cfg.storeDir != "" {
		// The store persists trace events too, so -store alone keeps a
		// flight recorder per job; JSONL files are only written for
		// -trace-dir. Tracing never alters results either way.
		tracers = make([]*trace.Tracer, len(defs))
	}
	for i, d := range defs {
		o := exp.Options{Quiet: true, Duration: cfg.duration, Scheduler: cfg.scheduler}
		if cfg.quick && o.Duration == 0 {
			o.Duration = runner.QuickDuration(d.ID)
		}
		if tracers != nil {
			// One flight recorder per job: tracers, like engines and
			// registries, are single-goroutine.
			tracers[i] = trace.New(cli.TraceRingCap)
			o.Trace = tracers[i]
		}
		jobs[i] = runner.Job{Def: d, Opts: o}
	}

	var progress sync.Mutex
	hook := func(id string, phase exp.Phase, err error) {
		if cfg.jsonOut {
			return
		}
		progress.Lock()
		defer progress.Unlock()
		switch phase {
		case exp.PhaseFailed:
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", id, err)
		}
	}
	fleet := &runner.Fleet{Workers: cfg.workers, Hook: hook, Telemetry: cfg.telemetry}
	if cfg.storeDir != "" {
		sw, err := store.Create(cfg.storeDir, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite: -store:", err)
			return 2
		}
		fleet.Store = sw
	}
	if cfg.httpAddr != "" {
		state := newLiveState(len(jobs))
		fleet.Hook = func(id string, phase exp.Phase, err error) {
			state.hook(id, phase, err)
			hook(id, phase, err)
		}
		fleet.OnResult = state.onResult
		stop, err := serveLive(cfg.httpAddr, state)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite: -http:", err)
			return 2
		}
		defer stop()
	}
	results, stats := fleet.Run(jobs)
	if fleet.Store != nil {
		if err := fleet.Store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite: -store:", err)
			return 2
		}
	}

	if cfg.traceDir != "" {
		for i, tr := range tracers {
			path, err := cli.ExportTrace(cfg.traceDir, jobs[i].Label(), tr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "phantom-suite: trace export:", err)
				return 2
			}
			if cfg.verbose && !cfg.jsonOut {
				fmt.Fprintf(os.Stderr, "trace %s: %d events retained (%d seen) → %s\n",
					jobs[i].Label(), len(tr.Events()), tr.Seen(), path)
			}
		}
	}

	exitCode := 0
	type report struct {
		ID       string             `json:"id"`
		WallMS   float64            `json:"wall_ms"`
		SimNS    int64              `json:"sim_nanos"`
		Error    string             `json:"error,omitempty"`
		Drifts   []string           `json:"drifts,omitempty"`
		Golden   string             `json:"golden"` // ok | drift | updated | none | skipped | n/a
		Summary  map[string]float64 `json:"summary,omitempty"`
		Counters map[string]uint64  `json:"counters,omitempty"`
		Notes    []string           `json:"notes,omitempty"`
	}
	reports := make([]report, 0, len(results))
	tol := runner.DefaultTolerance()

	for _, r := range results {
		rep := report{ID: r.Job.Label(), WallMS: float64(r.Wall) / float64(time.Millisecond), SimNS: int64(r.SimTime), Golden: "n/a"}
		if r.Err != nil {
			rep.Error = r.Err.Error()
			if r.Panicked && cfg.verbose {
				fmt.Fprintln(os.Stderr, r.Stack)
			}
			exitCode = 1
			reports = append(reports, rep)
			continue
		}
		rep.Summary = r.Res.Summary
		rep.Counters = r.Res.Counters
		if cfg.verbose {
			rep.Notes = r.Res.Notes
		}
		snap := runner.Snap(r)
		switch {
		case cfg.updateGolden:
			if err := snap.WriteFile(cfg.goldenDir); err != nil {
				fmt.Fprintln(os.Stderr, "phantom-suite: write golden:", err)
				return 2
			}
			rep.Golden = "updated"
		default:
			want, err := runner.ReadSnapshot(cfg.goldenDir, snap.ID)
			switch {
			case errors.Is(err, os.ErrNotExist):
				rep.Golden = "none"
			case err != nil:
				fmt.Fprintln(os.Stderr, "phantom-suite:", err)
				return 2
			case want.SimNanos != snap.SimNanos:
				rep.Golden = "skipped" // baseline recorded at a different duration
			default:
				drifts := runner.Compare(snap, want, tol)
				if len(drifts) == 0 {
					rep.Golden = "ok"
				} else {
					rep.Golden = "drift"
					exitCode = 1
					for _, d := range drifts {
						rep.Drifts = append(rep.Drifts, d.String())
					}
				}
			}
		}
		reports = append(reports, rep)
	}

	if cfg.jsonOut {
		out := struct {
			SchemaVersion int               `json:"schema_version"`
			Results       []report          `json:"results"`
			Wall          float64           `json:"wall_ms"`
			Work          float64           `json:"work_ms"`
			Speedup       float64           `json:"work_wall_ratio"`
			SimSec        float64           `json:"sim_seconds"`
			Workers       int               `json:"workers"`
			Failed        int               `json:"failed"`
			Mallocs       uint64            `json:"mallocs"`
			AllocBytes    uint64            `json:"alloc_bytes"`
			AllocsPerRun  float64           `json:"allocs_per_run"`
			Counters      map[string]uint64 `json:"counters,omitempty"`
		}{exp.SchemaVersion, reports, float64(stats.Wall) / float64(time.Millisecond),
			float64(stats.WorkWall) / float64(time.Millisecond),
			stats.Speedup(), stats.SimTime.Seconds(), stats.Workers, stats.Failed,
			stats.Mallocs, stats.AllocBytes, stats.AllocsPerRun(), stats.Counters}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "phantom-suite:", err)
			return 2
		}
		fmt.Println(string(b))
		return exitCode
	}

	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	for _, rep := range reports {
		status := "ok"
		if rep.Error != "" {
			status = "FAIL"
		}
		fmt.Printf("%-6s %-4s %8.0fms sim=%-8v golden=%s\n",
			rep.ID, status, rep.WallMS, sim.Duration(rep.SimNS), rep.Golden)
		for _, d := range rep.Drifts {
			fmt.Printf("       drift: %s\n", d)
		}
		if rep.Error != "" {
			fmt.Printf("       error: %s\n", rep.Error)
		}
		for _, n := range rep.Notes {
			fmt.Printf("       • %s\n", n)
		}
	}
	fmt.Printf("\n%d experiments, %d failed · wall %v · work %v · work/wall %.2fx (j=%d) · %.1f sim-s/wall-s · %.0f allocs/run (%.1f MB)\n",
		stats.Runs, stats.Failed, stats.Wall.Round(time.Millisecond),
		stats.WorkWall.Round(time.Millisecond), stats.Speedup(), stats.Workers,
		stats.SimPerWallSecond(), stats.AllocsPerRun(), float64(stats.AllocBytes)/1e6)
	if len(stats.Counters) > 0 {
		fmt.Println("\nfleet counter totals:")
		telemetry.WriteText(os.Stdout, stats.Counters, "  ")
	}
	return exitCode
}
