// Command phantom-sim runs an arbitrary ATM topology described in the
// simconfig language on standard input and prints the standard figure
// triple (queue, fair-share estimate, session rates) plus a summary table.
// Linear ("switches") and general-graph ("nodes"/"edge") dialects both run.
//
// Example:
//
//	phantom-sim <<'EOF'
//	switches 4
//	trunk 1 50
//	alg phantom u=5
//	session long 0 3 greedy
//	session narrow 1 2 greedy
//	duration 500ms
//	EOF
//
// Observability flags: -telemetry prints the run's counter snapshot,
// -trace-dir exports the flight recorder as JSONL, and -store appends the
// run (series, summary metrics, counters, trace events) to a phantomdb
// campaign directory under experiment id "sim" for phantom-trace -store.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simconfig"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// view is the render-side picture of a finished run, the same for the
// linear and the graph builder: labeled series plus the summary inputs.
type view struct {
	algName  string
	sessions []string
	acr      []*metrics.Series
	goodput  []*metrics.Series
	// queues/fairShares hold only the recorded (non-nil) series.
	queues      []*metrics.Series
	queueLabels []string
	fairShares  []*metrics.Series
	fsLabels    []string
	oracle      []float64
	// lines are the per-link utilization/peak-queue summary rows.
	lines []string
	trace *trace.Tracer
}

func main() {
	c := cli.New("phantom-sim",
		cli.FlagQuiet|cli.FlagScheduler|cli.FlagProfile|cli.FlagTelemetry|cli.FlagTrace|cli.FlagStore|cli.FlagShards)
	traceN := flag.Int("trace", 0, "dump the last N trace events after the run")
	svgDir := flag.String("svg", "", "write SVG figures into this directory")
	csvPath := flag.String("csv", "", "write all series as CSV to this file")
	c.Parse()

	spec, err := simconfig.Parse(os.Stdin)
	if err != nil {
		c.Fatal(err)
	}
	var tr *trace.Tracer
	if *traceN > 0 {
		tr = trace.New(*traceN)
	} else if c.TraceDir != "" || c.StoreDir != "" {
		tr = trace.New(cli.TraceRingCap)
	}
	var reg *telemetry.Registry
	if c.Telemetry {
		reg = telemetry.New()
	}

	var v *view
	var end sim.Time
	if spec.Graph != nil {
		cfg := *spec.Graph
		cfg.Scheduler = c.Scheduler
		cfg.Trace = tr
		cfg.Telemetry = reg
		if c.Shards != 0 {
			cfg.Shards = c.Shards
		}
		n, err := scenario.BuildGraph(cfg)
		if err != nil {
			c.Fatal(err)
		}
		n.Run(spec.Duration)
		end = n.Engine.Now()
		if v, err = graphView(spec, n); err != nil {
			c.Fatal(err)
		}
	} else {
		cfg := spec.Config
		cfg.Scheduler = c.Scheduler
		cfg.Trace = tr
		cfg.Telemetry = reg
		if c.Shards != 0 {
			cfg.Shards = c.Shards
		}
		n, err := scenario.BuildATM(cfg)
		if err != nil {
			c.Fatal(err)
		}
		n.Run(spec.Duration)
		end = n.Engine.Now()
		if v, err = linearView(spec, n); err != nil {
			c.Fatal(err)
		}
	}

	if !c.Quiet {
		render(v, end)
	}
	summarize(v, end)

	if *svgDir != "" {
		if err := writeSVGs(*svgDir, v, end); err != nil {
			c.Fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, v, end); err != nil {
			c.Fatal(err)
		}
	}
	if reg != nil {
		fmt.Println("\ntelemetry:")
		telemetry.WriteText(os.Stdout, reg.Snapshot(), "  ")
	}
	if c.TraceDir != "" {
		path, err := cli.ExportTrace(c.TraceDir, "sim", tr)
		if err != nil {
			c.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if c.StoreDir != "" {
		if err := storeRun(c, v, reg, tr, end); err != nil {
			c.Fatal(err)
		}
	}
	if *traceN > 0 {
		fmt.Printf("\ntrace (last %d of %d events):\n", len(v.trace.Events()), v.trace.Seen())
		if _, err := v.trace.WriteTo(os.Stdout); err != nil {
			c.Fatal(err)
		}
	}
	c.Close()
}

// storeRun persists the run under experiment id "sim": every recorded
// series (labeled as in the CSV export), the summary metrics, the counter
// snapshot and the retained trace events.
func storeRun(c *cli.Common, v *view, reg *telemetry.Registry, tr *trace.Tracer, end sim.Time) error {
	w, err := c.OpenStore()
	if err != nil {
		return err
	}
	seg := w.NewSegment(store.RunMeta{Experiment: "sim", End: end})
	for i, s := range v.acr {
		seg.AddSeries("acr_"+v.sessions[i], s.Points())
	}
	for i, s := range v.goodput {
		seg.AddSeries("goodput_"+v.sessions[i], s.Points())
	}
	for i, s := range v.queues {
		seg.AddSeries("queue_"+v.queueLabels[i], s.Points())
	}
	for i, s := range v.fairShares {
		seg.AddSeries("fairshare_"+v.fsLabels[i], s.Points())
	}
	seg.AddSummary(summaryMap(v, end))
	seg.AddCounters(reg.Snapshot())
	if tr != nil {
		seg.AddTrace(tr.Events())
	}
	if err := w.Append(seg); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// summaryMap flattens the summary table into the scalar metrics the store
// persists per run.
func summaryMap(v *view, end sim.Time) map[string]float64 {
	from := end - sim.Time(float64(end)*0.25)
	m := make(map[string]float64, 3*len(v.sessions)+1)
	var got []float64
	for i, name := range v.sessions {
		g := v.goodput[i].TimeAvg(from, end)
		got = append(got, g)
		m["goodput_"+name] = g
		m["oracle_"+name] = v.oracle[i]
		m["final_acr_"+name] = v.acr[i].Last()
	}
	m["jain_normalized"] = metrics.NormalizedJainIndex(got, v.oracle)
	return m
}

func linearView(spec *simconfig.Spec, n *scenario.ATMNet) (*view, error) {
	oracle, err := n.MaxMinOracle()
	if err != nil {
		return nil, err
	}
	v := &view{algName: spec.AlgName, acr: n.ACR, goodput: n.Goodput,
		oracle: oracle, trace: n.Config.Trace}
	for _, s := range n.Config.Sessions {
		v.sessions = append(v.sessions, s.Name)
	}
	for k, s := range n.TrunkQueue {
		v.queues = append(v.queues, s)
		v.queueLabels = append(v.queueLabels, fmt.Sprintf("trunk%d", k))
		v.lines = append(v.lines, fmt.Sprintf("trunk%d: utilization %.1f%%, peak queue %d cells",
			k, 100*n.TrunkUtilization(k), n.PeakTrunkQueue[k]))
	}
	for k, s := range n.FairShare {
		if s != nil {
			v.fairShares = append(v.fairShares, s)
			v.fsLabels = append(v.fsLabels, fmt.Sprintf("trunk%d", k))
		}
	}
	return v, nil
}

func graphView(spec *simconfig.Spec, n *scenario.GraphNet) (*view, error) {
	oracle, err := n.MaxMinOracle()
	if err != nil {
		return nil, err
	}
	v := &view{algName: spec.AlgName, acr: n.ACR, goodput: n.Goodput,
		oracle: oracle, trace: n.Config.Trace}
	for _, s := range n.Config.Sessions {
		v.sessions = append(v.sessions, s.Name)
	}
	// Directed link 2k is edge k's U→V direction, 2k+1 the reverse; label
	// by endpoints. Only links on some forward path are recorded.
	label := func(l int) string {
		e := n.Config.Edges[l/2]
		u, w := e.U, e.V
		if l%2 == 1 {
			u, w = w, u
		}
		return fmt.Sprintf("link%d-%d", u, w)
	}
	elapsed := n.Engine.Now().Seconds()
	for l, s := range n.LinkQueue {
		if s == nil {
			continue
		}
		v.queues = append(v.queues, s)
		v.queueLabels = append(v.queueLabels, label(l))
		util := 0.0
		if elapsed > 0 {
			util = float64(n.LinkSent(l)) / (n.LinkCapacityCPS(l) * elapsed)
		}
		v.lines = append(v.lines, fmt.Sprintf("%s: utilization %.1f%%, peak queue %d cells",
			label(l), 100*util, n.PeakLinkQueue[l]))
	}
	for l, s := range n.FairShare {
		if s != nil {
			v.fairShares = append(v.fairShares, s)
			v.fsLabels = append(v.fsLabels, label(l))
		}
	}
	return v, nil
}

// render prints the figure triple.
func render(v *view, end sim.Time) {
	q := plot.NewChart("queue length", "cells", 0, end)
	for i, s := range v.queues {
		q.Add(s, v.queueLabels[i])
	}
	fmt.Println(q.Render())

	if len(v.fairShares) > 0 {
		fs := plot.NewChart("fair-share estimate ("+v.algName+")", "cells/s", 0, end)
		for i, s := range v.fairShares {
			fs.Add(s, v.fsLabels[i])
		}
		fmt.Println(fs.Render())
	}

	acr := plot.NewChart("sessions' allowed rate", "cells/s", 0, end)
	for i, s := range v.acr {
		acr.Add(s, v.sessions[i])
	}
	fmt.Println(acr.Render())
}

// summarize prints the per-session table and per-link lines.
func summarize(v *view, end sim.Time) {
	from := end - sim.Time(float64(end)*0.25)
	tb := plot.NewTable("summary ("+v.algName+")",
		"session", "goodput(cells/s)", "max-min oracle", "ratio", "finalACR")
	var got []float64
	for i, name := range v.sessions {
		g := v.goodput[i].TimeAvg(from, end)
		got = append(got, g)
		tb.AddRow(name, g, v.oracle[i], g/v.oracle[i], v.acr[i].Last())
	}
	fmt.Println(tb.Render())
	fmt.Printf("normalized Jain vs oracle: %.4f\n", metrics.NormalizedJainIndex(got, v.oracle))
	for _, line := range v.lines {
		fmt.Println(line)
	}
}

// writeSVGs regenerates the figure triple as SVG files.
func writeSVGs(dir string, v *view, end sim.Time) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	q := plot.NewSVG("queue length", "cells", 0, end)
	for i, s := range v.queues {
		q.Add(s, v.queueLabels[i])
	}
	fs := plot.NewSVG("fair-share estimate ("+v.algName+")", "cells/s", 0, end)
	for i, s := range v.fairShares {
		fs.Add(s, v.fsLabels[i])
	}
	acr := plot.NewSVG("sessions' allowed rate", "cells/s", 0, end)
	for i, s := range v.acr {
		acr.Add(s, v.sessions[i])
	}
	for name, chart := range map[string]*plot.SVG{
		"queue.svg": q, "fairshare.svg": fs, "acr.svg": acr,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(chart.Render()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
	}
	return nil
}

// writeCSV exports every recorded series on a common grid.
func writeCSV(path string, v *view, end sim.Time) error {
	var series []*metrics.Series
	var labels []string
	for i, s := range v.acr {
		series = append(series, s)
		labels = append(labels, "acr_"+v.sessions[i])
	}
	for i, s := range v.queues {
		series = append(series, s)
		labels = append(labels, "queue_"+v.queueLabels[i])
	}
	for i, s := range v.fairShares {
		series = append(series, s)
		labels = append(labels, "fairshare_"+v.fsLabels[i])
	}
	out := plot.CSV(0, end, 1000, series, labels)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
