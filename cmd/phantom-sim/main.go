// Command phantom-sim runs an arbitrary linear ATM topology described in
// the simconfig language on standard input and prints the standard figure
// triple (queue, fair-share estimate, session rates) plus a summary table.
//
// Example:
//
//	phantom-sim <<'EOF'
//	switches 4
//	trunk 1 50
//	alg phantom u=5
//	session long 0 3 greedy
//	session narrow 1 2 greedy
//	duration 500ms
//	EOF
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simconfig"
	"repro/internal/trace"
)

func main() {
	c := cli.New("phantom-sim", cli.FlagQuiet|cli.FlagScheduler|cli.FlagProfile)
	traceN := flag.Int("trace", 0, "dump the last N trace events after the run")
	svgDir := flag.String("svg", "", "write SVG figures into this directory")
	csvPath := flag.String("csv", "", "write all series as CSV to this file")
	c.Parse()

	spec, err := simconfig.Parse(os.Stdin)
	if err != nil {
		c.Fatal(err)
	}
	spec.Config.Scheduler = c.Scheduler
	if *traceN > 0 {
		spec.Config.Trace = trace.New(*traceN)
	}
	n, err := scenario.BuildATM(spec.Config)
	if err != nil {
		c.Fatal(err)
	}
	n.Run(spec.Duration)
	end := n.Engine.Now()

	if !c.Quiet {
		q := plot.NewChart("trunk queue length", "cells", 0, end)
		for k, s := range n.TrunkQueue {
			q.Add(s, fmt.Sprintf("trunk%d", k))
		}
		fmt.Println(q.Render())

		fsChart := plot.NewChart("fair-share estimate ("+spec.AlgName+")", "cells/s", 0, end)
		any := false
		for k, s := range n.FairShare {
			if s != nil {
				fsChart.Add(s, fmt.Sprintf("trunk%d", k))
				any = true
			}
		}
		if any {
			fmt.Println(fsChart.Render())
		}

		acr := plot.NewChart("sessions' allowed rate", "cells/s", 0, end)
		for i, s := range n.ACR {
			acr.Add(s, n.Config.Sessions[i].Name)
		}
		fmt.Println(acr.Render())
	}

	oracle, err := n.MaxMinOracle()
	if err != nil {
		c.Fatal(err)
	}
	from := end - sim.Time(float64(end)*0.25)
	tb := plot.NewTable("summary ("+spec.AlgName+")",
		"session", "goodput(cells/s)", "max-min oracle", "ratio", "finalACR")
	var got []float64
	for i := range n.Config.Sessions {
		g := n.Goodput[i].TimeAvg(from, end)
		got = append(got, g)
		tb.AddRow(n.Config.Sessions[i].Name, g, oracle[i], g/oracle[i], n.ACR[i].Last())
	}
	fmt.Println(tb.Render())
	fmt.Printf("normalized Jain vs oracle: %.4f\n", metrics.NormalizedJainIndex(got, oracle))
	for k := range n.TrunkQueue {
		fmt.Printf("trunk%d: utilization %.1f%%, peak queue %d cells\n",
			k, 100*n.TrunkUtilization(k), n.PeakTrunkQueue[k])
	}
	if *svgDir != "" {
		if err := writeSVGs(*svgDir, spec.AlgName, n, end); err != nil {
			c.Fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, n, end); err != nil {
			c.Fatal(err)
		}
	}
	if tr := spec.Config.Trace; tr != nil {
		fmt.Printf("\ntrace (last %d of %d events):\n", len(tr.Events()), tr.Seen())
		if _, err := tr.WriteTo(os.Stdout); err != nil {
			c.Fatal(err)
		}
	}
	c.Close()
}

// writeSVGs regenerates the figure triple as SVG files.
func writeSVGs(dir, algName string, n *scenario.ATMNet, end sim.Time) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	q := plot.NewSVG("trunk queue length", "cells", 0, end)
	for k, s := range n.TrunkQueue {
		q.Add(s, fmt.Sprintf("trunk%d", k))
	}
	fs := plot.NewSVG("fair-share estimate ("+algName+")", "cells/s", 0, end)
	for k, s := range n.FairShare {
		if s != nil {
			fs.Add(s, fmt.Sprintf("trunk%d", k))
		}
	}
	acr := plot.NewSVG("sessions' allowed rate", "cells/s", 0, end)
	for i, s := range n.ACR {
		acr.Add(s, n.Config.Sessions[i].Name)
	}
	for name, chart := range map[string]*plot.SVG{
		"queue.svg": q, "fairshare.svg": fs, "acr.svg": acr,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(chart.Render()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
	}
	return nil
}

// writeCSV exports every recorded series on a common grid.
func writeCSV(path string, n *scenario.ATMNet, end sim.Time) error {
	var series []*metrics.Series
	var labels []string
	for i, s := range n.ACR {
		series = append(series, s)
		labels = append(labels, "acr_"+n.Config.Sessions[i].Name)
	}
	for k, s := range n.TrunkQueue {
		series = append(series, s)
		labels = append(labels, fmt.Sprintf("queue_trunk%d", k))
	}
	for k, s := range n.FairShare {
		if s != nil {
			series = append(series, s)
			labels = append(labels, fmt.Sprintf("fairshare_trunk%d", k))
		}
	}
	out := plot.CSV(0, end, 1000, series, labels)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
