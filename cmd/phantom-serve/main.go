// Command phantom-serve runs the phantom fleet as a service: a daemon
// exposing the versioned job API (POST /v1/jobs and friends) over a
// bounded queue of campaign jobs, each persisted into its own phantomdb
// campaign directory. phantom-suite and phantom-fuzz submit to it with
// -submit; curl works too — the wire shapes are documented in README.md.
//
// SIGTERM/SIGINT drains gracefully: submission stops (503), queued and
// running jobs are cancelled, in-flight runs land, every job's store is
// sealed, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	c := cli.New("phantom-serve", cli.FlagWorkers|cli.FlagScheduler|cli.FlagHTTP)
	addr := flag.String("addr", ":8080", "job API listen address")
	data := flag.String("data", "",
		"data root: each job writes a phantomdb campaign to <data>/<job-id> (empty: no persistence)")
	queue := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	jobsN := flag.Int("jobs", 1, "jobs running concurrently (each is a fleet of -j workers)")
	c.Parse()
	defer c.Close()

	s := serve.New(serve.Config{
		Dir:          *data,
		QueueDepth:   *queue,
		JobWorkers:   *jobsN,
		FleetWorkers: c.Workers,
		Scheduler:    c.Scheduler,
		Pprof:        c.Pprof,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phantom-serve: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	fmt.Fprintf(os.Stderr, "phantom-serve: job API on http://%s%s/jobs\n", ln.Addr(), "/v1")
	if *data != "" {
		fmt.Fprintf(os.Stderr, "phantom-serve: campaigns under %s\n", *data)
	}

	// -http mounts the fleet-wide live endpoints on a second, ops-only
	// listener (the API mux serves them too; this one can stay private).
	if c.HTTPAddr != "" {
		stop, err := cli.ServeLive(c.HTTPAddr, s.Live())
		if err != nil {
			fmt.Fprintf(os.Stderr, "phantom-serve: -http: %v\n", err)
			return 1
		}
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	fmt.Fprintln(os.Stderr, "phantom-serve: draining")

	// Drain cancels every job and blocks until in-flight runs land and all
	// stores seal; result streams then hit their terminal line on their
	// own, so the HTTP shutdown below finds only idle connections.
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "phantom-serve: drained, stores sealed")
	return 0
}
