// Command phantom-tcp runs the TCP/router experiments of the Phantom
// reproduction (Section 4 of the paper): drop-tail vs Selective Discard,
// beat-down, Source Quench, ECN marking and Selective RED.
//
// Usage:
//
//	phantom-tcp -list
//	phantom-tcp -exp E09 [-duration 10s] [-quiet] [-scheduler wheel]
//	phantom-tcp -all
package main

import (
	"flag"

	"repro/internal/cli"
)

var tcpIDs = []string{"E09", "E10", "E11", "E12", "E13", "E19", "E20"}

var aliases = map[string]string{
	"fig14": "E09", "fig17": "E10", "fig18": "E11",
	"quench": "E12", "ecn": "E12", "red": "E13",
	"vegas": "E19", "interop": "E20", "atm": "E20",
}

func main() {
	c := cli.New("phantom-tcp",
		cli.FlagDuration|cli.FlagQuiet|cli.FlagJSON|cli.FlagScheduler|cli.FlagProfile|cli.FlagTelemetry|cli.FlagTrace)
	list := flag.Bool("list", false, "list available experiments")
	id := flag.String("exp", "", "experiment ID to run (e.g. E09, fig14)")
	all := flag.Bool("all", false, "run every TCP experiment (E09–E13)")
	c.Parse()

	switch {
	case *list:
		cli.ListExperiments(tcpIDs)
	case *all:
		for _, eid := range tcpIDs {
			if err := c.RunExperiment(eid); err != nil {
				c.Fatal(err)
			}
		}
	case *id != "":
		if err := c.RunExperiment(cli.Resolve(aliases, *id)); err != nil {
			c.Fatal(err)
		}
	default:
		c.Usage()
	}
	c.Close()
}
