// Command phantom-tcp runs the TCP/router experiments of the Phantom
// reproduction (Section 4 of the paper): drop-tail vs Selective Discard,
// beat-down, Source Quench, ECN marking and Selective RED.
//
// Usage:
//
//	phantom-tcp -list
//	phantom-tcp -exp E09 [-duration 10s] [-quiet]
//	phantom-tcp -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

var tcpIDs = []string{"E09", "E10", "E11", "E12", "E13", "E19", "E20"}

// jsonMode switches output to machine-readable JSON.
var jsonMode bool

func main() {
	list := flag.Bool("list", false, "list available experiments")
	id := flag.String("exp", "", "experiment ID to run (e.g. E09, fig14)")
	all := flag.Bool("all", false, "run every TCP experiment (E09–E13)")
	duration := flag.Duration("duration", 0, "override simulated duration (e.g. 10s)")
	quiet := flag.Bool("quiet", false, "suppress figures, print summary metrics only")
	asJSON := flag.Bool("json", false, "print each experiment's summary as JSON")
	flag.Parse()
	jsonMode = *asJSON

	switch {
	case *list:
		for _, d := range exp.All() {
			for _, t := range tcpIDs {
				if d.ID == t {
					fmt.Printf("%-4s %-16s %s\n", d.ID, d.PaperRef, d.Title)
				}
			}
		}
	case *all:
		for _, eid := range tcpIDs {
			if err := runOne(eid, *duration, *quiet); err != nil {
				fatal(err)
			}
		}
	case *id != "":
		if err := runOne(resolve(*id), *duration, *quiet); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func resolve(name string) string {
	aliases := map[string]string{
		"fig14": "E09", "fig17": "E10", "fig18": "E11",
		"quench": "E12", "ecn": "E12", "red": "E13",
		"vegas": "E19", "interop": "E20", "atm": "E20",
	}
	if id, ok := aliases[strings.ToLower(name)]; ok {
		return id
	}
	return strings.ToUpper(name)
}

func runOne(id string, d time.Duration, quiet bool) error {
	def, ok := exp.Get(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	if !jsonMode {
		fmt.Printf("== %s (%s): %s\n", def.ID, def.PaperRef, def.Title)
	}
	res, err := def.Run(exp.Options{Duration: d, Quiet: quiet || jsonMode})
	if err != nil {
		return err
	}
	if jsonMode {
		if res.Title == "" {
			res.Title = def.Title
		}
		out, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	for _, f := range res.Figures {
		fmt.Println(f)
	}
	for _, t := range res.Tables {
		fmt.Println(t)
	}
	for _, n := range res.Notes {
		fmt.Printf("  • %s\n", n)
	}
	fmt.Println()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phantom-tcp:", err)
	os.Exit(1)
}
